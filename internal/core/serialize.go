package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"ghsom/internal/som"
)

// modelJSON is the on-disk representation of a GHSOM.
type modelJSON struct {
	Version int        `json:"version"`
	Config  Config     `json:"config"`
	Dim     int        `json:"dim"`
	Mean    []float64  `json:"mean"`
	MQE0    float64    `json:"mqe0"`
	Nodes   []nodeJSON `json:"nodes"`
}

type nodeJSON struct {
	ID         int            `json:"id"`
	Depth      int            `json:"depth"`
	ParentID   int            `json:"parentId"` // -1 for root
	ParentUnit int            `json:"parentUnit"`
	Rows       int            `json:"rows"`
	Cols       int            `json:"cols"`
	Weights    []float64      `json:"weights"` // row-major flattened, Rows*Cols*Dim
	UnitQE     []float64      `json:"unitQe"`
	UnitCount  []int          `json:"unitCount"`
	Children   map[string]int `json:"children,omitempty"` // unit -> child node ID
}

const modelVersion = 1

// Structural caps shared by the JSON and binary loaders. They reject
// absurd shapes before any proportional allocation happens, so corrupt or
// hostile envelopes fail with an error instead of an out-of-memory panic.
const (
	maxModelDim    = 1 << 20 // feature dimensions
	maxModelNodes  = 1 << 20 // maps per hierarchy
	maxMapSide     = 1 << 16 // rows or cols of one map
	maxUnitsPerMap = 1 << 20 // rows*cols of one map
	maxTotalUnits  = 1 << 24 // units across the hierarchy
	maxArenaFloats = 1 << 27 // total weight float64s (1 GiB)
)

// Save writes the model as JSON to w.
func (g *GHSOM) Save(w io.Writer) error {
	mj := modelJSON{
		Version: modelVersion,
		Config:  g.cfg,
		Dim:     g.dim,
		Mean:    g.mean,
		MQE0:    g.mqe0,
	}
	parentOf := map[int]int{g.root.ID: -1}
	for _, n := range g.nodes {
		for _, c := range n.Children {
			parentOf[c.ID] = n.ID
		}
	}
	for _, n := range g.nodes {
		nj := nodeJSON{
			ID:         n.ID,
			Depth:      n.Depth,
			ParentID:   parentOf[n.ID],
			ParentUnit: n.ParentUnit,
			Rows:       n.Map.Rows(),
			Cols:       n.Map.Cols(),
			UnitQE:     n.UnitQE,
			UnitCount:  n.UnitCount,
		}
		nj.Weights = make([]float64, 0, n.Map.Units()*g.dim)
		for u := 0; u < n.Map.Units(); u++ {
			nj.Weights = append(nj.Weights, n.Map.Weight(u)...)
		}
		if len(n.Children) > 0 {
			nj.Children = make(map[string]int, len(n.Children))
			for u, c := range n.Children {
				nj.Children[fmt.Sprint(u)] = c.ID
			}
		}
		mj.Nodes = append(mj.Nodes, nj)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(mj); err != nil {
		return fmt.Errorf("core: encode model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save. Input is validated
// structurally — dimensions and shapes within the package caps, weights
// arrays of exactly the declared size, child references forming a proper
// tree (in range, acyclic, each node expanded by exactly one parent unit)
// — so corrupt or truncated envelopes return errors rather than building
// a model that panics later.
func Load(r io.Reader) (*GHSOM, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if mj.Version != modelVersion {
		return nil, fmt.Errorf("core: unsupported model version %d, want %d", mj.Version, modelVersion)
	}
	if mj.Dim < 1 || mj.Dim > maxModelDim {
		return nil, fmt.Errorf("core: model dim %d outside [1, %d]", mj.Dim, maxModelDim)
	}
	if len(mj.Nodes) == 0 {
		return nil, fmt.Errorf("core: model has no nodes")
	}
	if len(mj.Nodes) > maxModelNodes {
		return nil, fmt.Errorf("core: model has %d nodes, cap %d", len(mj.Nodes), maxModelNodes)
	}
	if len(mj.Mean) != mj.Dim {
		return nil, fmt.Errorf("core: model mean has %d values, want dim %d", len(mj.Mean), mj.Dim)
	}
	g := &GHSOM{cfg: mj.Config, dim: mj.Dim, mean: mj.Mean, mqe0: mj.MQE0}
	g.nodes = make([]*Node, len(mj.Nodes))
	totalUnits := 0
	// First pass: rebuild maps.
	for i, nj := range mj.Nodes {
		if nj.ID != i {
			return nil, fmt.Errorf("core: node %d stored out of order (id %d)", i, nj.ID)
		}
		if nj.Depth < 1 {
			return nil, fmt.Errorf("core: node %d has depth %d, want >= 1", i, nj.Depth)
		}
		if nj.Rows < 1 || nj.Rows > maxMapSide || nj.Cols < 1 || nj.Cols > maxMapSide {
			return nil, fmt.Errorf("core: node %d shape %dx%d outside [1, %d]", i, nj.Rows, nj.Cols, maxMapSide)
		}
		units := nj.Rows * nj.Cols
		if units > maxUnitsPerMap {
			return nil, fmt.Errorf("core: node %d has %d units, cap %d", i, units, maxUnitsPerMap)
		}
		if totalUnits += units; totalUnits > maxTotalUnits {
			return nil, fmt.Errorf("core: model exceeds %d total units", maxTotalUnits)
		}
		// Validate the weights length before som.New allocates rows*cols*dim
		// floats, so a corrupt declared shape cannot force a huge allocation
		// that its weights array never backs.
		if want := units * mj.Dim; len(nj.Weights) != want {
			return nil, fmt.Errorf("core: node %d has %d weights, want %d", i, len(nj.Weights), want)
		}
		if len(nj.UnitQE) != 0 && len(nj.UnitQE) != units {
			return nil, fmt.Errorf("core: node %d has %d unit errors, want 0 or %d", i, len(nj.UnitQE), units)
		}
		if len(nj.UnitCount) != 0 && len(nj.UnitCount) != units {
			return nil, fmt.Errorf("core: node %d has %d unit counts, want 0 or %d", i, len(nj.UnitCount), units)
		}
		for u, cnt := range nj.UnitCount {
			if cnt < 0 {
				return nil, fmt.Errorf("core: node %d unit %d has negative count %d", i, u, cnt)
			}
		}
		m, err := som.New(nj.Rows, nj.Cols, mj.Dim)
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", i, err)
		}
		for u := 0; u < m.Units(); u++ {
			if err := m.SetWeight(u, nj.Weights[u*mj.Dim:(u+1)*mj.Dim]); err != nil {
				return nil, fmt.Errorf("core: node %d unit %d: %w", i, u, err)
			}
		}
		g.nodes[i] = &Node{
			ID:         nj.ID,
			Depth:      nj.Depth,
			Map:        m,
			ParentUnit: nj.ParentUnit,
			UnitQE:     nj.UnitQE,
			UnitCount:  nj.UnitCount,
		}
	}
	// Second pass: rebuild child links. Each child must be referenced by
	// exactly one (parent, unit) pair, one depth down from its parent.
	childSeen := make([]bool, len(g.nodes))
	for i, nj := range mj.Nodes {
		if nj.ParentID == -1 {
			if g.root != nil {
				return nil, fmt.Errorf("core: multiple roots (%d and %d)", g.root.ID, i)
			}
			// Training emits nodes in BFS order, so the root is always
			// node 0 and every child follows its parent. The compiled
			// representation and the binary writer rely on this
			// invariant, so a file violating it is corrupt.
			if i != 0 {
				return nil, fmt.Errorf("core: root stored as node %d, want 0", i)
			}
			if nj.Depth != 1 {
				return nil, fmt.Errorf("core: root node %d has depth %d, want 1", i, nj.Depth)
			}
			g.root = g.nodes[i]
		}
		if len(nj.Children) == 0 {
			continue
		}
		g.nodes[i].Children = make(map[int]*Node, len(nj.Children))
		for unitStr, childID := range nj.Children {
			var unit int
			if _, err := fmt.Sscanf(unitStr, "%d", &unit); err != nil {
				return nil, fmt.Errorf("core: node %d child key %q: %w", i, unitStr, err)
			}
			if childID < 0 || childID >= len(g.nodes) {
				return nil, fmt.Errorf("core: node %d child id %d out of range", i, childID)
			}
			if childID <= i {
				return nil, fmt.Errorf("core: node %d child id %d does not follow its parent (BFS order)", i, childID)
			}
			if unit < 0 || unit >= g.nodes[i].Map.Units() {
				return nil, fmt.Errorf("core: node %d child unit %d out of range", i, unit)
			}
			if childSeen[childID] {
				return nil, fmt.Errorf("core: node %d referenced as a child more than once", childID)
			}
			childSeen[childID] = true
			if g.nodes[childID].Depth != g.nodes[i].Depth+1 {
				return nil, fmt.Errorf("core: node %d (depth %d) has child %d at depth %d",
					i, g.nodes[i].Depth, childID, g.nodes[childID].Depth)
			}
			if _, dup := g.nodes[i].Children[unit]; dup {
				return nil, fmt.Errorf("core: node %d unit %d expanded by more than one child", i, unit)
			}
			g.nodes[i].Children[unit] = g.nodes[childID]
		}
	}
	if g.root == nil {
		return nil, fmt.Errorf("core: model has no root node")
	}
	if childSeen[g.root.ID] {
		return nil, fmt.Errorf("core: root node %d referenced as a child", g.root.ID)
	}
	for i := range g.nodes {
		if i != g.root.ID && !childSeen[i] {
			return nil, fmt.Errorf("core: node %d is unreachable (no parent reference)", i)
		}
	}
	return g, nil
}

// compiledMagic identifies the binary compiled-model blob (format
// version in the trailing byte).
var compiledMagic = [8]byte{'G', 'H', 'S', 'O', 'M', 'C', 'B', '1'}

// WriteBinary writes the compiled model as a single little-endian binary
// blob: config (length-prefixed JSON), dimensions, the flat node table,
// the per-unit count and error tables, and the weight arena. The output
// is deterministic: identical models produce identical bytes. See
// WriteBinaryAt for the alignment-padded variant the zero-copy loader
// prefers.
func (c *Compiled) WriteBinary(w io.Writer) error {
	cfgJSON, err := json.Marshal(c.cfg)
	if err != nil {
		return fmt.Errorf("core: encode compiled config: %w", err)
	}
	return c.writeBinaryCfg(w, cfgJSON)
}

// writeBinaryCfg writes the blob with a caller-prepared (possibly
// alignment-padded) config JSON section.
func (c *Compiled) writeBinaryCfg(w io.Writer, cfgJSON []byte) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(compiledMagic[:]); err != nil {
		return fmt.Errorf("core: write compiled model: %w", err)
	}
	le := binary.LittleEndian
	write := func(v any) error { return binary.Write(bw, le, v) }
	steps := []any{
		uint32(len(cfgJSON)),
		cfgJSON,
		uint32(c.dim),
		c.mqe0,
		c.mean,
		uint32(len(c.nodes)),
	}
	for _, v := range steps {
		if err := write(v); err != nil {
			return fmt.Errorf("core: write compiled model: %w", err)
		}
	}
	for i := range c.nodes {
		nd := &c.nodes[i]
		hdr := [4]int32{int32(nd.parent), int32(nd.parentUnit), int32(nd.rows), int32(nd.cols)}
		if err := write(hdr[:]); err != nil {
			return fmt.Errorf("core: write compiled node %d: %w", i, err)
		}
	}
	for _, v := range []any{c.counts, c.unitQE, c.arena} {
		if err := write(v); err != nil {
			return fmt.Errorf("core: write compiled tables: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: write compiled model: %w", err)
	}
	return nil
}

// ReadCompiledBinary reads a compiled model previously written by
// WriteBinary, validating every shape and table against the package caps
// and the tree structure (each non-root node expanded by exactly one
// in-range parent unit that precedes it), so truncated or mutated blobs
// return errors instead of panicking.
func ReadCompiledBinary(r io.Reader) (*Compiled, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: read compiled magic: %w", err)
	}
	if magic != compiledMagic {
		return nil, fmt.Errorf("core: not a compiled model blob (magic %q)", magic[:])
	}
	le := binary.LittleEndian
	read := func(v any) error { return binary.Read(br, le, v) }

	var cfgLen uint32
	if err := read(&cfgLen); err != nil {
		return nil, fmt.Errorf("core: read compiled config length: %w", err)
	}
	if cfgLen > 1<<20 {
		return nil, fmt.Errorf("core: compiled config of %d bytes exceeds cap", cfgLen)
	}
	cfgJSON := make([]byte, cfgLen)
	if _, err := io.ReadFull(br, cfgJSON); err != nil {
		return nil, fmt.Errorf("core: read compiled config: %w", err)
	}
	c := &Compiled{}
	if err := json.Unmarshal(cfgJSON, &c.cfg); err != nil {
		return nil, fmt.Errorf("core: decode compiled config: %w", err)
	}
	if err := c.cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: compiled config: %w", err)
	}

	var dim uint32
	if err := read(&dim); err != nil {
		return nil, fmt.Errorf("core: read compiled dim: %w", err)
	}
	if dim < 1 || dim > maxModelDim {
		return nil, fmt.Errorf("core: compiled dim %d outside [1, %d]", dim, maxModelDim)
	}
	c.dim = int(dim)
	if err := read(&c.mqe0); err != nil {
		return nil, fmt.Errorf("core: read compiled mqe0: %w", err)
	}
	mean, err := readFloat64s(br, c.dim)
	if err != nil {
		return nil, fmt.Errorf("core: read compiled mean: %w", err)
	}
	c.mean = mean

	var nodeCount uint32
	if err := read(&nodeCount); err != nil {
		return nil, fmt.Errorf("core: read compiled node count: %w", err)
	}
	if nodeCount < 1 || nodeCount > maxModelNodes {
		return nil, fmt.Errorf("core: compiled node count %d outside [1, %d]", nodeCount, maxModelNodes)
	}
	// Node headers (and every table below) are read incrementally, with
	// storage growing only as bytes actually arrive: a corrupt header
	// claiming a huge model cannot force a large allocation from a tiny
	// stream — it fails on EOF having allocated in proportion to the
	// stream, which is what makes the caps above safe to check late.
	c.nodes = make([]compiledNode, 0, min(int(nodeCount), 4096))
	totalUnits := 0
	for i := 0; i < int(nodeCount); i++ {
		var hdr [4]int32
		if err := read(hdr[:]); err != nil {
			return nil, fmt.Errorf("core: read compiled node %d: %w", i, err)
		}
		parent, parentUnit, rows, cols := int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3])
		if rows < 1 || rows > maxMapSide || cols < 1 || cols > maxMapSide {
			return nil, fmt.Errorf("core: compiled node %d shape %dx%d outside [1, %d]", i, rows, cols, maxMapSide)
		}
		units := rows * cols
		if units > maxUnitsPerMap {
			return nil, fmt.Errorf("core: compiled node %d has %d units, cap %d", i, units, maxUnitsPerMap)
		}
		nd := compiledNode{
			weightOff:  totalUnits * c.dim,
			unitBase:   totalUnits,
			units:      units,
			rows:       rows,
			cols:       cols,
			parent:     parent,
			parentUnit: parentUnit,
		}
		if totalUnits += units; totalUnits > maxTotalUnits {
			return nil, fmt.Errorf("core: compiled model exceeds %d total units", maxTotalUnits)
		}
		if i == 0 {
			if parent != -1 {
				return nil, fmt.Errorf("core: compiled node 0 has parent %d, want -1 (root)", parent)
			}
			nd.depth = 1
		} else {
			// Nodes are stored in training (BFS) order, so a node's parent
			// always precedes it; anything else is a corrupt or cyclic table.
			if parent < 0 || parent >= i {
				return nil, fmt.Errorf("core: compiled node %d has parent %d, want [0, %d)", i, parent, i)
			}
			if parentUnit < 0 || parentUnit >= c.nodes[parent].units {
				return nil, fmt.Errorf("core: compiled node %d parent unit %d outside parent's %d units",
					i, parentUnit, c.nodes[parent].units)
			}
			nd.depth = c.nodes[parent].depth + 1
		}
		c.nodes = append(c.nodes, nd)
	}
	if int64(totalUnits)*int64(c.dim) > maxArenaFloats {
		return nil, fmt.Errorf("core: compiled arena of %d floats exceeds cap %d", int64(totalUnits)*int64(c.dim), maxArenaFloats)
	}

	// Payload tables, incremental like the headers. The derived tables
	// (childIndex, probe lists, pruning tables) are only built once the
	// whole payload has arrived.
	c.counts, err = readInt64s(br, totalUnits)
	if err != nil {
		return nil, fmt.Errorf("core: read compiled counts: %w", err)
	}
	for i, cnt := range c.counts {
		if cnt < 0 {
			return nil, fmt.Errorf("core: compiled unit %d has negative count %d", i, cnt)
		}
	}
	c.unitQE, err = readFloat64s(br, totalUnits)
	if err != nil {
		return nil, fmt.Errorf("core: read compiled unit errors: %w", err)
	}
	c.arena, err = readFloat64s(br, totalUnits*c.dim)
	if err != nil {
		return nil, fmt.Errorf("core: read compiled arena: %w", err)
	}

	c.childIndex = make([]int32, totalUnits)
	for i := range c.childIndex {
		c.childIndex[i] = -1
	}
	for i := 1; i < len(c.nodes); i++ {
		nd := &c.nodes[i]
		slot := c.nodes[nd.parent].unitBase + nd.parentUnit
		if c.childIndex[slot] != -1 {
			return nil, fmt.Errorf("core: compiled node %d unit %d expanded by more than one child",
				nd.parent, nd.parentUnit)
		}
		c.childIndex[slot] = int32(i)
	}
	c.buildTrainedIndex()
	return c, nil
}

// readChunkVals bounds one read of the incremental table readers.
const readChunkVals = 1 << 13 // 64 KiB of payload per read

// readFloat64s reads n little-endian float64s in bounded chunks, growing
// the destination only as data actually arrives, so a header claiming a
// huge table cannot force a proportional allocation from a short stream.
func readFloat64s(br *bufio.Reader, n int) ([]float64, error) {
	out := make([]float64, 0, min(n, readChunkVals))
	var buf [8 * readChunkVals]byte
	for len(out) < n {
		k := min(n-len(out), readChunkVals)
		b := buf[: 8*k : 8*k]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
		}
	}
	return out, nil
}

// readInt64s is readFloat64s for int64 tables.
func readInt64s(br *bufio.Reader, n int) ([]int64, error) {
	out := make([]int64, 0, min(n, readChunkVals))
	var buf [8 * readChunkVals]byte
	for len(out) < n {
		k := min(n-len(out), readChunkVals)
		b := buf[: 8*k : 8*k]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(b[8*i:])))
		}
	}
	return out, nil
}
