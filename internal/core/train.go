package core

import (
	"fmt"
	"math"
	"math/rand"

	"ghsom/internal/som"
	"ghsom/internal/vecmath"
)

// GrowthEvent records the state of one map after a growth-loop iteration.
// The series of events for a node reproduces the convergence and growth
// figures.
type GrowthEvent struct {
	// NodeID identifies the map.
	NodeID int
	// Depth is the map's layer.
	Depth int
	// Iteration is the growth-loop iteration within the map (0 = initial
	// training of the 2x2 map).
	Iteration int
	// Rows and Cols are the map shape after this iteration.
	Rows, Cols int
	// MeanUnitMQE is the growth criterion value after this iteration.
	MeanUnitMQE float64
	// MQE is the plain mean quantization error over the map's data.
	MQE float64
}

// GrowthTrace collects GrowthEvents across the whole training run.
type GrowthTrace struct {
	// Events holds all recorded events in training order.
	Events []GrowthEvent
}

// ForNode returns the events belonging to one node, in iteration order.
func (t *GrowthTrace) ForNode(id int) []GrowthEvent {
	var out []GrowthEvent
	for _, e := range t.Events {
		if e.NodeID == id {
			out = append(out, e)
		}
	}
	return out
}

// Train builds a GHSOM from data. Every row must have the same dimension.
// Training is deterministic for a fixed Config (including Seed) and data.
func Train(data [][]float64, cfg Config) (*GHSOM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, ErrNoData
	}
	dim := len(data[0])
	for i, x := range data {
		if len(x) != dim {
			return nil, fmt.Errorf("core: data row %d has dim %d, want %d", i, len(x), dim)
		}
		if !vecmath.IsFinite(x) {
			return nil, fmt.Errorf("core: data row %d contains NaN or Inf", i)
		}
	}

	mean, err := vecmath.Mean(data)
	if err != nil {
		return nil, fmt.Errorf("core: layer-0 mean: %w", err)
	}
	var qeSum float64
	for _, x := range data {
		qeSum += vecmath.Distance(x, mean)
	}
	mqe0 := qeSum / float64(len(data))

	g := &GHSOM{cfg: cfg, dim: dim, mean: mean, mqe0: mqe0}
	if cfg.CollectTrace {
		g.trace = &GrowthTrace{}
	}
	rng := newRNG(cfg.Seed)

	// Layer 1 grows against the layer-0 unit's error.
	root, err := g.trainNode(data, mean, mqe0, 1, -1, nil, rng)
	if err != nil {
		return nil, err
	}
	g.root = root

	// Breadth-first vertical expansion. The queue order plus the single
	// rng stream keeps training deterministic.
	type job struct {
		node *Node
		data [][]float64
	}
	queue := []job{{root, data}}
	// A (near-)zero layer-0 error means the data is degenerate (all
	// records identical); any vertical expansion would be noise-chasing.
	if mqe0 <= 1e-12 {
		queue = nil
	}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		if j.node.Depth >= cfg.MaxDepth {
			continue
		}
		assignments := j.node.Map.Assign(j.data)
		for u := 0; u < j.node.Map.Units(); u++ {
			if j.node.UnitCount[u] < cfg.MinMapData {
				continue
			}
			if j.node.UnitQE[u] <= cfg.Tau2*mqe0 {
				continue
			}
			sub := make([][]float64, 0, j.node.UnitCount[u])
			for i, a := range assignments {
				if a == u {
					sub = append(sub, j.data[i])
				}
			}
			if len(sub) < cfg.MinMapData {
				continue
			}
			childMean, err := vecmath.Mean(sub)
			if err != nil {
				return nil, fmt.Errorf("core: child mean for node %d unit %d: %w", j.node.ID, u, err)
			}
			var corners [][]float64
			if cfg.OrientChildren {
				corners = orientationCorners(j.node.Map, u)
			}
			child, err := g.trainNode(sub, childMean, j.node.UnitQE[u], j.node.Depth+1, u, corners, rng)
			if err != nil {
				return nil, fmt.Errorf("core: expand node %d unit %d: %w", j.node.ID, u, err)
			}
			if j.node.Children == nil {
				j.node.Children = make(map[int]*Node)
			}
			j.node.Children[u] = child
			queue = append(queue, job{child, sub})
		}
	}
	return g, nil
}

// trainNode creates, grows, and fine-tunes a single map on data, stopping
// when its mean unit error falls below Tau1 * parentQE.
func (g *GHSOM) trainNode(data [][]float64, mean []float64, parentQE float64, depth, parentUnit int, corners [][]float64, rng *rand.Rand) (*Node, error) {
	cfg := g.cfg
	m, err := som.New(2, 2, g.dim)
	if err != nil {
		return nil, err
	}
	if err := m.InitAroundMean(mean, cfg.InitSpread, rng); err != nil {
		return nil, err
	}
	if len(corners) == 4 {
		// Coherent orientation: bias each corner of the new 2x2 map in
		// the direction of the corresponding parent-grid neighbor, so the
		// child map unfolds the parent unit's region with the same
		// spatial arrangement as the parent layer. The offsets are
		// applied around the child's own data mean to stay inside the
		// region being expanded.
		for i := 0; i < 4; i++ {
			w := make([]float64, g.dim)
			copy(w, mean)
			vecmath.AXPYInPlace(w, orientationBlend, corners[i])
			if err := m.SetWeight(i, w); err != nil {
				return nil, err
			}
		}
	}
	node := &Node{ID: len(g.nodes), Depth: depth, Map: m, ParentUnit: parentUnit}
	g.nodes = append(g.nodes, node)

	train := func(epochs int) error {
		tc := som.TrainConfig{
			Epochs:    epochs,
			Alpha0:    cfg.Alpha0,
			AlphaEnd:  cfg.AlphaEnd,
			Radius0:   0, // derive from current map size
			RadiusEnd: cfg.RadiusEnd,
			Kernel:    cfg.Kernel,
			Decay:     cfg.Decay,
			Shuffle:   !cfg.Batch,
			Rng:       rng,
		}
		if cfg.Batch {
			_, err := m.TrainBatch(data, tc)
			return err
		}
		_, err := m.TrainOnline(data, tc)
		return err
	}

	record := func(iter int) float64 {
		muMQE := m.MeanUnitMQE(data)
		if g.trace != nil {
			g.trace.Events = append(g.trace.Events, GrowthEvent{
				NodeID:      node.ID,
				Depth:       depth,
				Iteration:   iter,
				Rows:        m.Rows(),
				Cols:        m.Cols(),
				MeanUnitMQE: muMQE,
				MQE:         m.MQE(data),
			})
		}
		return muMQE
	}

	if err := train(cfg.EpochsPerGrowth); err != nil {
		return nil, err
	}
	muMQE := record(0)

	// The growth target: stop once the map represents its data tau1 times
	// better than the parent unit did. A (near-)zero parent error means
	// the data is already fully represented; skip growth entirely.
	target := cfg.Tau1 * parentQE
	for iter := 1; iter <= cfg.MaxGrowIters; iter++ {
		if parentQE <= 1e-12 || math.IsNaN(muMQE) || muMQE <= target {
			break
		}
		if m.Units() >= cfg.MaxMapUnits {
			break
		}
		// A map larger than its data set cannot quantize it any better;
		// growth past that point only manufactures dead units.
		if m.Units() >= len(data) {
			break
		}
		e, d, ok := errorUnitAndNeighbor(m, data)
		if !ok {
			break
		}
		if err := m.GrowBetween(e, d); err != nil {
			return nil, fmt.Errorf("core: grow node %d: %w", node.ID, err)
		}
		if err := train(cfg.EpochsPerGrowth); err != nil {
			return nil, err
		}
		muMQE = record(iter)
	}

	if cfg.FineTuneEpochs > 0 {
		if err := train(cfg.FineTuneEpochs); err != nil {
			return nil, err
		}
	}
	node.UnitQE, node.UnitCount = m.UnitMeanErrors(data)
	return node, nil
}

// orientationBlend scales the parent-neighborhood direction offsets used
// to seed child-map corners. Small enough to keep corners inside the
// parent unit's region, large enough to fix the unfolding orientation.
const orientationBlend = 0.1

// orientationCorners computes, for parent unit u, the four direction
// vectors (toward the up-left, up-right, down-left, down-right parent
// neighborhoods, relative to the unit's own weight) used to orient a new
// child map. Out-of-grid neighbors contribute nothing in that direction.
// The returned slice is ordered to match the child 2x2 unit layout:
// (0,0), (0,1), (1,0), (1,1).
func orientationCorners(m *som.Map, u int) [][]float64 {
	r, c := m.Coords(u)
	center := m.Weight(u)
	dim := m.Dim()
	dirTo := func(rr, cc int) []float64 {
		out := make([]float64, dim)
		if !m.InBounds(rr, cc) {
			return out
		}
		w := m.WeightAt(rr, cc)
		for d := 0; d < dim; d++ {
			out[d] = w[d] - center[d]
		}
		return out
	}
	up := dirTo(r-1, c)
	down := dirTo(r+1, c)
	left := dirTo(r, c-1)
	right := dirTo(r, c+1)
	mix := func(a, b []float64) []float64 {
		out := make([]float64, dim)
		for d := 0; d < dim; d++ {
			out[d] = (a[d] + b[d]) / 2
		}
		return out
	}
	return [][]float64{
		mix(up, left),    // child (0,0)
		mix(up, right),   // child (0,1)
		mix(down, left),  // child (1,0)
		mix(down, right), // child (1,1)
	}
}

// errorUnitAndNeighbor finds the unit with the largest mean quantization
// error (among units that won data) and its most dissimilar direct grid
// neighbor in weight space. It returns ok=false when no unit won any data.
func errorUnitAndNeighbor(m *som.Map, data [][]float64) (e, d int, ok bool) {
	meanQE, counts := m.UnitMeanErrors(data)
	e = -1
	best := math.Inf(-1)
	for i, qe := range meanQE {
		if counts[i] == 0 {
			continue
		}
		if qe > best {
			best = qe
			e = i
		}
	}
	if e < 0 {
		return 0, 0, false
	}
	var nbuf [4]int
	neighbors := m.Neighbors(e, nbuf[:0])
	d = -1
	worst := math.Inf(-1)
	for _, j := range neighbors {
		dist := vecmath.SquaredDistance(m.Weight(e), m.Weight(j))
		if dist > worst {
			worst = dist
			d = j
		}
	}
	if d < 0 {
		return 0, 0, false
	}
	return e, d, true
}
