package core

import (
	"fmt"
	"math"

	"ghsom/internal/parallel"
	"ghsom/internal/som"
	"ghsom/internal/vecmath"
)

// GrowthEvent records the state of one map after a growth-loop iteration.
// The series of events for a node reproduces the convergence and growth
// figures.
type GrowthEvent struct {
	// NodeID identifies the map.
	NodeID int
	// Depth is the map's layer.
	Depth int
	// Iteration is the growth-loop iteration within the map (0 = initial
	// training of the 2x2 map).
	Iteration int
	// Rows and Cols are the map shape after this iteration.
	Rows, Cols int
	// MeanUnitMQE is the growth criterion value after this iteration.
	MeanUnitMQE float64
	// MQE is the plain mean quantization error over the map's data.
	MQE float64
}

// GrowthTrace collects GrowthEvents across the whole training run.
type GrowthTrace struct {
	// Events holds all recorded events in training order.
	Events []GrowthEvent
}

// ForNode returns the events belonging to one node, in iteration order.
func (t *GrowthTrace) ForNode(id int) []GrowthEvent {
	var out []GrowthEvent
	for _, e := range t.Events {
		if e.NodeID == id {
			out = append(out, e)
		}
	}
	return out
}

// nodeJob describes one map to train: the root, or the expansion of one
// parent unit. The job's data is a zero-copy index view into the one
// shared training matrix — hierarchical expansion never rebuilds
// [][]float64 subsets. Jobs within a breadth-first level are independent
// (sibling subtrees see disjoint rows), which is what makes them safe to
// train concurrently.
type nodeJob struct {
	parent     *Node // nil for the root
	parentUnit int   // -1 for the root
	view       vecmath.View
	mean       []float64
	parentQE   float64
	depth      int
	corners    [][]float64
	seed       int64 // RNG seed for this node's private stream
}

// Train builds a GHSOM from data. Every row must have the same dimension.
// It is a thin adapter over TrainMatrix: the rows are copied once into a
// contiguous matrix and the hierarchy trains on zero-copy views of it.
// Training is deterministic for a fixed Config (including Seed) and data:
// every node trains on a private RNG stream derived from Seed and the
// node's position in the tree, node IDs are assigned in breadth-first
// order after each level completes, and all floating-point reductions run
// in data order — so the model is bit-for-bit identical at every
// Parallelism setting.
func Train(data [][]float64, cfg Config) (*GHSOM, error) {
	if len(data) == 0 {
		return nil, ErrNoData
	}
	mat, err := vecmath.MatrixFromRows(data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return TrainMatrix(mat, nil, cfg)
}

// TrainMatrix builds a GHSOM from the rows of a flat row-major matrix —
// the zero-copy entry point of the training dataplane. When idx is
// non-nil only the rows it names are trained on, in idx order (the
// label-cap subsample passes its index selection here instead of
// gathering rows). The matrix is read-only during training and must not
// be mutated concurrently; the determinism guarantees of Train apply.
func TrainMatrix(mat vecmath.Matrix, idx []int, cfg Config) (*GHSOM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := mat.CheckIndex(idx); err != nil {
		return nil, fmt.Errorf("core: training subset: %w", err)
	}
	view := mat.View()
	if idx != nil {
		view = mat.Subset(idx)
	}
	n := view.Rows()
	if n == 0 {
		return nil, ErrNoData
	}
	dim := view.Dim()
	for i := 0; i < n; i++ {
		if !vecmath.IsFinite(view.Row(i)) {
			return nil, fmt.Errorf("core: data row %d contains NaN or Inf", view.Index(i))
		}
	}

	mean, err := view.Mean()
	if err != nil {
		return nil, fmt.Errorf("core: layer-0 mean: %w", err)
	}
	var qeSum float64
	for i := 0; i < n; i++ {
		qeSum += vecmath.Distance(view.Row(i), mean)
	}
	mqe0 := qeSum / float64(n)

	g := &GHSOM{cfg: cfg, dim: dim, mean: mean, mqe0: mqe0}
	if cfg.CollectTrace {
		g.trace = &GrowthTrace{}
	}

	// Level-synchronous breadth-first expansion: train every map of a
	// level concurrently (sibling subtrees are embarrassingly parallel),
	// then register the results and derive the next level's jobs in the
	// deterministic (parent training order, unit index) order.
	type trained struct {
		node   *Node
		events []GrowthEvent
		err    error
	}
	jobs := []nodeJob{{
		parentUnit: -1,
		view:       view,
		mean:       mean,
		parentQE:   mqe0, // layer 1 grows against the layer-0 unit's error
		depth:      1,
		seed:       deriveSeed(cfg.Seed, -1),
	}}
	for len(jobs) > 0 {
		// Split the worker budget between the level fan-out and each job's
		// inner batch passes: with W jobs training concurrently, each gets
		// ~budget/W inner workers instead of multiplying the fan-out to
		// W*budget goroutines contending for the same cores. Results are
		// identical either way; only scheduling pressure changes.
		levelWorkers := parallel.Workers(cfg.Parallelism, len(jobs))
		innerP := parallel.Resolve(cfg.Parallelism) / levelWorkers
		if innerP < 1 {
			innerP = 1
		}
		results := make([]trained, len(jobs))
		parallel.ForEach(cfg.Parallelism, len(jobs), func(i int) {
			n, ev, err := g.trainNodeMap(jobs[i], innerP)
			results[i] = trained{node: n, events: ev, err: err}
		})
		var next []nodeJob
		for i, res := range results {
			jb := jobs[i]
			if res.err != nil {
				if jb.parent != nil {
					return nil, fmt.Errorf("core: expand node %d unit %d: %w", jb.parent.ID, jb.parentUnit, res.err)
				}
				return nil, res.err
			}
			n := res.node
			n.ID = len(g.nodes)
			g.nodes = append(g.nodes, n)
			// Training is over for this map; from here on (expansion
			// assignment, routing, quality measures) it runs outside the
			// level fan-out and gets the full worker budget.
			n.Map.SetParallelism(cfg.Parallelism)
			if jb.parent == nil {
				g.root = n
			} else {
				if jb.parent.Children == nil {
					jb.parent.Children = make(map[int]*Node)
				}
				jb.parent.Children[jb.parentUnit] = n
			}
			if g.trace != nil {
				for k := range res.events {
					res.events[k].NodeID = n.ID
				}
				g.trace.Events = append(g.trace.Events, res.events...)
			}
			children, err := g.expandJobs(n, jb)
			if err != nil {
				return nil, err
			}
			next = append(next, children...)
		}
		jobs = next
	}
	return g, nil
}

// expandJobs derives the child-map training jobs for a freshly registered
// node: every unit holding enough data and still exceeding the tau2
// granularity criterion is queued for vertical expansion.
func (g *GHSOM) expandJobs(n *Node, jb nodeJob) ([]nodeJob, error) {
	cfg := g.cfg
	if n.Depth >= cfg.MaxDepth {
		return nil, nil
	}
	// A (near-)zero layer-0 error means the data is degenerate (all
	// records identical); any vertical expansion would be noise-chasing.
	if g.mqe0 <= 1e-12 {
		return nil, nil
	}
	assignments := n.Map.AssignView(jb.view)
	var out []nodeJob
	for u := 0; u < n.Map.Units(); u++ {
		if n.UnitCount[u] < cfg.MinMapData {
			continue
		}
		if n.UnitQE[u] <= cfg.Tau2*g.mqe0 {
			continue
		}
		// The child trains on an index view of the shared matrix: only the
		// row indices are materialized, never the rows themselves.
		sub := make([]int, 0, n.UnitCount[u])
		for i, a := range assignments {
			if a == u {
				sub = append(sub, i)
			}
		}
		if len(sub) < cfg.MinMapData {
			continue
		}
		childView := jb.view.Subview(sub)
		childMean, err := childView.Mean()
		if err != nil {
			return nil, fmt.Errorf("core: child mean for node %d unit %d: %w", n.ID, u, err)
		}
		var corners [][]float64
		if cfg.OrientChildren {
			corners = orientationCorners(n.Map, u)
		}
		out = append(out, nodeJob{
			parent:     n,
			parentUnit: u,
			view:       childView,
			mean:       childMean,
			parentQE:   n.UnitQE[u],
			depth:      n.Depth + 1,
			corners:    corners,
			seed:       deriveSeed(jb.seed, u),
		})
	}
	return out, nil
}

// trainNodeMap creates, grows, and fine-tunes a single map on jb.data,
// stopping when its mean unit error falls below Tau1 * jb.parentQE. It is
// a pure function of the job (plus the read-only model config): it touches
// no shared GHSOM state and draws randomness only from the job's private
// seed, so jobs of one level may run concurrently. innerP bounds the
// workers of the map's own batch passes while it trains inside the level
// fan-out. The returned node has no ID yet (the caller assigns IDs in
// registration order), and growth events carry a placeholder NodeID for
// the caller to fill in.
func (g *GHSOM) trainNodeMap(jb nodeJob, innerP int) (*Node, []GrowthEvent, error) {
	cfg := g.cfg
	rng := newRNG(jb.seed)
	data := jb.view
	m, err := som.New(2, 2, g.dim)
	if err != nil {
		return nil, nil, err
	}
	m.SetParallelism(innerP)
	m.SetBMUPrecision(cfg.BMUPrecision)
	if err := m.InitAroundMean(jb.mean, cfg.InitSpread, rng); err != nil {
		return nil, nil, err
	}
	if len(jb.corners) == 4 {
		// Coherent orientation: bias each corner of the new 2x2 map in
		// the direction of the corresponding parent-grid neighbor, so the
		// child map unfolds the parent unit's region with the same
		// spatial arrangement as the parent layer. The offsets are
		// applied around the child's own data mean to stay inside the
		// region being expanded.
		for i := 0; i < 4; i++ {
			w := make([]float64, g.dim)
			copy(w, jb.mean)
			vecmath.AXPYInPlace(w, orientationBlend, jb.corners[i])
			if err := m.SetWeight(i, w); err != nil {
				return nil, nil, err
			}
		}
	}
	node := &Node{ID: -1, Depth: jb.depth, Map: m, ParentUnit: jb.parentUnit}
	var events []GrowthEvent

	train := func(epochs int) error {
		tc := som.TrainConfig{
			Epochs:      epochs,
			Alpha0:      cfg.Alpha0,
			AlphaEnd:    cfg.AlphaEnd,
			Radius0:     0, // derive from current map size
			RadiusEnd:   cfg.RadiusEnd,
			Kernel:      cfg.Kernel,
			Decay:       cfg.Decay,
			Shuffle:     !cfg.Batch,
			Rng:         rng,
			Parallelism: innerP,
			// The growth loop measures MeanUnitMQE after every call; the
			// per-epoch MQE series would be recomputed work it never reads.
			SkipEpochMQE: true,
		}
		if cfg.Batch {
			_, err := m.TrainBatchView(data, tc)
			return err
		}
		_, err := m.TrainOnlineView(data, tc)
		return err
	}

	record := func(iter int) float64 {
		// One BMU pass serves both quality measures: the growth criterion
		// (mean of per-unit mean errors) and, under tracing, the plain MQE
		// (total error over all rows).
		sumQE, counts := m.UnitErrorsView(data)
		var perUnit, total float64
		var won int
		for i, c := range counts {
			total += sumQE[i]
			if c > 0 {
				perUnit += sumQE[i] / float64(c)
				won++
			}
		}
		muMQE := math.NaN()
		if won > 0 {
			muMQE = perUnit / float64(won)
		}
		if g.trace != nil {
			events = append(events, GrowthEvent{
				NodeID:      -1, // assigned at registration
				Depth:       jb.depth,
				Iteration:   iter,
				Rows:        m.Rows(),
				Cols:        m.Cols(),
				MeanUnitMQE: muMQE,
				MQE:         total / float64(data.Rows()),
			})
		}
		return muMQE
	}

	if err := train(cfg.EpochsPerGrowth); err != nil {
		return nil, nil, err
	}
	muMQE := record(0)

	// The growth target: stop once the map represents its data tau1 times
	// better than the parent unit did. A (near-)zero parent error means
	// the data is already fully represented; skip growth entirely.
	target := cfg.Tau1 * jb.parentQE
	for iter := 1; iter <= cfg.MaxGrowIters; iter++ {
		if jb.parentQE <= 1e-12 || math.IsNaN(muMQE) || muMQE <= target {
			break
		}
		if m.Units() >= cfg.MaxMapUnits {
			break
		}
		// A map larger than its data set cannot quantize it any better;
		// growth past that point only manufactures dead units.
		if m.Units() >= data.Rows() {
			break
		}
		e, d, ok := errorUnitAndNeighbor(m, data)
		if !ok {
			break
		}
		if err := m.GrowBetween(e, d); err != nil {
			return nil, nil, fmt.Errorf("core: grow map: %w", err)
		}
		if err := train(cfg.EpochsPerGrowth); err != nil {
			return nil, nil, err
		}
		muMQE = record(iter)
	}

	if cfg.FineTuneEpochs > 0 {
		if err := train(cfg.FineTuneEpochs); err != nil {
			return nil, nil, err
		}
	}
	node.UnitQE, node.UnitCount = m.UnitMeanErrorsView(data)
	return node, events, nil
}

// deriveSeed maps a parent stream seed and a unit index to the child
// node's private RNG seed via a splitmix64-style finalizer. The derivation
// depends only on the path from the root (root uses unit -1), never on
// execution order, which keeps training deterministic under parallelism.
func deriveSeed(parent int64, unit int) int64 {
	z := uint64(parent) + uint64(unit+1)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// orientationBlend scales the parent-neighborhood direction offsets used
// to seed child-map corners. Small enough to keep corners inside the
// parent unit's region, large enough to fix the unfolding orientation.
const orientationBlend = 0.1

// orientationCorners computes, for parent unit u, the four direction
// vectors (toward the up-left, up-right, down-left, down-right parent
// neighborhoods, relative to the unit's own weight) used to orient a new
// child map. Out-of-grid neighbors contribute nothing in that direction.
// The returned slice is ordered to match the child 2x2 unit layout:
// (0,0), (0,1), (1,0), (1,1).
func orientationCorners(m *som.Map, u int) [][]float64 {
	r, c := m.Coords(u)
	center := m.Weight(u)
	dim := m.Dim()
	dirTo := func(rr, cc int) []float64 {
		out := make([]float64, dim)
		if !m.InBounds(rr, cc) {
			return out
		}
		w := m.WeightAt(rr, cc)
		for d := 0; d < dim; d++ {
			out[d] = w[d] - center[d]
		}
		return out
	}
	up := dirTo(r-1, c)
	down := dirTo(r+1, c)
	left := dirTo(r, c-1)
	right := dirTo(r, c+1)
	mix := func(a, b []float64) []float64 {
		out := make([]float64, dim)
		for d := 0; d < dim; d++ {
			out[d] = (a[d] + b[d]) / 2
		}
		return out
	}
	return [][]float64{
		mix(up, left),    // child (0,0)
		mix(up, right),   // child (0,1)
		mix(down, left),  // child (1,0)
		mix(down, right), // child (1,1)
	}
}

// errorUnitAndNeighbor finds the unit with the largest mean quantization
// error (among units that won data) and its most dissimilar direct grid
// neighbor in weight space. It returns ok=false when no unit won any data.
func errorUnitAndNeighbor(m *som.Map, data vecmath.View) (e, d int, ok bool) {
	meanQE, counts := m.UnitMeanErrorsView(data)
	e = -1
	best := math.Inf(-1)
	for i, qe := range meanQE {
		if counts[i] == 0 {
			continue
		}
		if qe > best {
			best = qe
			e = i
		}
	}
	if e < 0 {
		return 0, 0, false
	}
	var nbuf [4]int
	neighbors := m.Neighbors(e, nbuf[:0])
	d = -1
	worst := math.Inf(-1)
	for _, j := range neighbors {
		dist := vecmath.SquaredDistance(m.Weight(e), m.Weight(j))
		if dist > worst {
			worst = dist
			d = j
		}
	}
	if d < 0 {
		return 0, 0, false
	}
	return e, d, true
}
