package core

import (
	"math"
	"math/rand"
	"testing"

	"ghsom/internal/som"
)

// nearTieModel hand-builds a hierarchy whose unit weights are
// adversarial for the expanded-form candidate generator: exact duplicate
// units (zero-distance ties that must resolve to the lowest index),
// units separated by single ULPs (candidates the settle margin must hand
// to the exact kernel), an untrained unit (masked routing), and an
// untrained child map (full-map fallback).
func nearTieModel(t *testing.T) *GHSOM {
	t.Helper()
	const dim = 6
	mkMap := func(rows, cols int, weights [][]float64) *som.Map {
		m, err := som.New(rows, cols, dim)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range weights {
			if err := m.SetWeight(i, w); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	base := []float64{0.5, 0.25, 0.75, 0.125, 0.625, 0.375}
	bump := func(w []float64, ulps int) []float64 {
		out := append([]float64(nil), w...)
		for k := 0; k < ulps; k++ {
			out[0] = math.Nextafter(out[0], 2)
		}
		return out
	}
	far := []float64{10, 10, 10, 10, 10, 10}
	root := mkMap(2, 2, [][]float64{base, bump(base, 1), bump(base, 2), far})
	// Child under root unit 0: three units, two exact duplicates and one
	// single-ULP neighbor; the middle unit is untrained (masked out).
	childA := mkMap(3, 1, [][]float64{base, base, bump(base, 1)})
	// Child under root unit 3: all units untrained — the descent must
	// fall back to the full map there.
	childB := mkMap(2, 1, [][]float64{far, bump(far, 3)})

	g := &GHSOM{cfg: DefaultConfig(), dim: dim, mean: append([]float64(nil), base...), mqe0: 1}
	g.nodes = []*Node{
		{ID: 0, Depth: 1, Map: root, ParentUnit: -1,
			UnitCount: []int{10, 5, 3, 2}, UnitQE: []float64{0.1, 0.1, 0.1, 0.1}},
		{ID: 1, Depth: 2, Map: childA, ParentUnit: 0,
			UnitCount: []int{4, 0, 6}, UnitQE: []float64{0.1, 0, 0.1}},
		{ID: 2, Depth: 2, Map: childB, ParentUnit: 3,
			UnitCount: []int{0, 0}, UnitQE: []float64{0, 0}},
	}
	g.root = g.nodes[0]
	g.root.Children = map[int]*Node{0: g.nodes[1], 3: g.nodes[2]}
	return g
}

// TestRouteTrainedFlatNearTies pins the blocked batch descent bitwise to
// the scalar walks on the adversarial fixture, with enough distinct rows
// per node group to force the GEMM path and duplicates to exercise the
// dedup replay.
func TestRouteTrainedFlatNearTies(t *testing.T) {
	g := nearTieModel(t)
	c := Compile(g)
	dim := c.Dim()
	rng := rand.New(rand.NewSource(17))

	base := []float64{0.5, 0.25, 0.75, 0.125, 0.625, 0.375}
	var rows [][]float64
	// Exact unit-weight hits (zero-distance exact ties at both levels).
	rows = append(rows, base)
	w0 := append([]float64(nil), base...)
	w0[0] = math.Nextafter(w0[0], 2)
	rows = append(rows, w0)
	// Midpoints between ULP-separated units: the settle margin must admit
	// both and judge them exactly.
	mid := append([]float64(nil), base...)
	mid[0] += (math.Nextafter(base[0], 2) - base[0]) / 2
	rows = append(rows, mid)
	// The far cluster (descends into the untrained child).
	for i := 0; i < 12; i++ {
		r := make([]float64, dim)
		for d := range r {
			r[d] = 10 + rng.NormFloat64()*0.01
		}
		rows = append(rows, r)
	}
	// A cloud of tiny perturbations around base: ≥ routeGemmMin distinct
	// rows at the root and in child A, so the GEMM path engages.
	for i := 0; i < 24; i++ {
		r := make([]float64, dim)
		for d := range r {
			r[d] = base[d] + rng.NormFloat64()*1e-9
		}
		rows = append(rows, r)
	}
	// Degenerate rows: NaN (scalar-contract fallback) and overflow-scale
	// magnitudes (expanded-form guard fallback).
	nanRow := make([]float64, dim)
	for d := range nanRow {
		nanRow[d] = math.NaN()
	}
	rows = append(rows, nanRow)
	huge := make([]float64, dim)
	for d := range huge {
		huge[d] = 1e160
	}
	rows = append(rows, huge)
	// Duplicates interleaved across the batch for the dedup replay.
	rows = append(rows, base, rows[3], mid)

	flat := make([]float64, 0, len(rows)*dim)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	n := len(rows)

	for _, par := range []int{1, 2, 8, 0} {
		got := make([]Placement, n)
		if err := c.RouteTrainedFlat(flat, n, got, par); err != nil {
			t.Fatal(err)
		}
		for i, r := range rows {
			wantTree := g.RouteTrained(r)
			wantCompiled := c.RouteTrained(r)
			if !placementsBitIdentical(wantTree, wantCompiled) {
				t.Fatalf("row %d: tree %+v != compiled per-record %+v", i, wantTree, wantCompiled)
			}
			if !placementsBitIdentical(wantTree, got[i]) {
				t.Fatalf("par %d row %d: batch %+v != tree %+v", par, i, got[i], wantTree)
			}
		}
	}
}
