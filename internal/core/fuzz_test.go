package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad asserts that arbitrary bytes never panic the model loader, and
// that a loaded model (when loading succeeds) routes without panicking.
func FuzzLoad(f *testing.F) {
	// Seed with a real serialized model and mutations of it.
	data := fourBlobs(99, 30)
	cfg := quickConfig()
	g, err := Train(data, cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add(strings.Replace(valid, `"rows":2`, `"rows":9999`, 1))
	f.Add(strings.Replace(valid, `"version":1`, `"version":2`, 1))
	f.Add("{}")
	f.Add("")
	f.Add(`{"version":1,"dim":1,"nodes":[{"id":0,"depth":1,"parentId":-1,"rows":1,"cols":1,"weights":[0]}]}`)

	f.Fuzz(func(t *testing.T, in string) {
		m, err := Load(strings.NewReader(in))
		if err != nil {
			return
		}
		// Any successfully loaded model must route safely.
		x := make([]float64, m.Dim())
		p := m.Route(x)
		if p.NodeID < 0 {
			t.Fatal("loaded model routed to invalid node")
		}
		pt := m.RouteTrained(x)
		if pt.NodeID < 0 {
			t.Fatal("loaded model RouteTrained to invalid node")
		}
		_ = m.Stats()
	})
}
