package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad asserts that arbitrary bytes never panic the model loader, and
// that a loaded model (when loading succeeds) routes without panicking.
func FuzzLoad(f *testing.F) {
	// Seed with a real serialized model and mutations of it.
	data := fourBlobs(99, 30)
	cfg := quickConfig()
	g, err := Train(data, cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add(strings.Replace(valid, `"rows":2`, `"rows":9999`, 1))
	f.Add(strings.Replace(valid, `"version":1`, `"version":2`, 1))
	f.Add("{}")
	f.Add("")
	f.Add(`{"version":1,"dim":1,"nodes":[{"id":0,"depth":1,"parentId":-1,"rows":1,"cols":1,"weights":[0]}]}`)

	f.Fuzz(func(t *testing.T, in string) {
		m, err := Load(strings.NewReader(in))
		if err != nil {
			return
		}
		// Any successfully loaded model must route safely.
		x := make([]float64, m.Dim())
		p := m.Route(x)
		if p.NodeID < 0 {
			t.Fatal("loaded model routed to invalid node")
		}
		pt := m.RouteTrained(x)
		if pt.NodeID < 0 {
			t.Fatal("loaded model RouteTrained to invalid node")
		}
		_ = m.Stats()
	})
}

// FuzzReadCompiledBinary asserts that arbitrary bytes never panic the
// compiled-model loader, and that a successfully loaded compiled model
// routes and decompiles without panicking.
func FuzzReadCompiledBinary(f *testing.F) {
	data := fourBlobs(42, 30)
	g, err := Train(data, quickConfig())
	if err != nil {
		f.Fatal(err)
	}
	var blob bytes.Buffer
	if err := Compile(g).WriteBinary(&blob); err != nil {
		f.Fatal(err)
	}
	valid := blob.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte("GHSOMCB1"))
	f.Add([]byte(""))
	mut := append([]byte(nil), valid...)
	if len(mut) > 32 {
		mut[12] ^= 0xff
		mut[28] ^= 0x01
	}
	f.Add(mut)

	f.Fuzz(func(t *testing.T, in []byte) {
		c, err := ReadCompiledBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		x := make([]float64, c.Dim())
		_ = c.Route(x)
		_ = c.RouteTrained(x)
		_ = c.Stats()
		if back, err := c.Decompile(); err == nil {
			_ = back.Stats()
		}
	})
}
