package core

import "unsafe"

// Shared, platform-independent Mapping accessors.

// Bytes returns the mapped (or fallback-read) file contents. The slice
// is read-only: on a real mmap, writing faults the process. Views
// derived from it are valid only until Close.
func (m *Mapping) Bytes() []byte {
	if m == nil {
		return nil
	}
	return m.data
}

// Len returns the mapped length in bytes.
func (m *Mapping) Len() int {
	if m == nil {
		return 0
	}
	return len(m.data)
}

// IsMmap reports whether the mapping is a real page-cache-shared mmap
// (false on platforms where OpenMapping degrades to a heap read).
func (m *Mapping) IsMmap() bool { return m != nil && m.mmap }

// hostLittleEndian reports whether the host stores multi-byte integers
// little-endian. The wire and envelope formats are little-endian, so
// zero-copy views over serialized tables are only valid on such hosts;
// big-endian hosts silently take the decode-copy path instead.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// aligned8 reports whether the byte at data[off] sits on an 8-byte
// machine address — the requirement for viewing the bytes as a
// []float64/[]int64 (unsafe.Slice panics under checkptr otherwise).
func aligned8(data []byte, off int) bool {
	return uintptr(unsafe.Pointer(&data[off]))%8 == 0
}

// viewFloat64s returns data[off : off+8n] as a []float64 without
// copying. The caller must have checked aligned8 and bounds, and must
// keep data alive for the life of the view.
func viewFloat64s(data []byte, off, n int) []float64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&data[off])), n)
}

// viewInt64s is viewFloat64s for int64 tables.
func viewInt64s(data []byte, off, n int) []int64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&data[off])), n)
}
