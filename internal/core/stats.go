package core

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the structure of a trained hierarchy — the numbers the
// tau-sweep table (T4) reports.
type Stats struct {
	// Maps is the total number of SOMs in the hierarchy.
	Maps int
	// Units is the total number of units across all maps.
	Units int
	// LeafUnits is the number of units with no child map (the model's
	// effective codebook size).
	LeafUnits int
	// MaxDepth is the deepest layer present (root = 1).
	MaxDepth int
	// MapsPerDepth[d] is the number of maps at layer d+1.
	MapsPerDepth []int
	// UnitsPerDepth[d] is the number of units at layer d+1.
	UnitsPerDepth []int
	// MeanMapUnits is Units / Maps.
	MeanMapUnits float64
	// LargestMapUnits is the unit count of the biggest single map.
	LargestMapUnits int
}

// Stats computes structure statistics for the model.
func (g *GHSOM) Stats() Stats {
	var s Stats
	for _, n := range g.nodes {
		s.Maps++
		units := n.Map.Units()
		s.Units += units
		if n.Depth > s.MaxDepth {
			s.MaxDepth = n.Depth
		}
		for len(s.MapsPerDepth) < n.Depth {
			s.MapsPerDepth = append(s.MapsPerDepth, 0)
			s.UnitsPerDepth = append(s.UnitsPerDepth, 0)
		}
		s.MapsPerDepth[n.Depth-1]++
		s.UnitsPerDepth[n.Depth-1] += units
		if units > s.LargestMapUnits {
			s.LargestMapUnits = units
		}
		for u := 0; u < units; u++ {
			if n.IsLeafUnit(u) {
				s.LeafUnits++
			}
		}
	}
	if s.Maps > 0 {
		s.MeanMapUnits = float64(s.Units) / float64(s.Maps)
	}
	return s
}

// String renders the stats as a single human-readable line.
func (s Stats) String() string {
	return fmt.Sprintf("maps=%d units=%d leaves=%d depth=%d mean-map=%.1f largest-map=%d",
		s.Maps, s.Units, s.LeafUnits, s.MaxDepth, s.MeanMapUnits, s.LargestMapUnits)
}

// TreeString renders the hierarchy as an indented tree, one line per map,
// showing shape and per-map data counts. It is the textual counterpart of
// the topology figures.
func (g *GHSOM) TreeString() string {
	var b strings.Builder
	g.writeTree(&b, g.root, 0)
	return b.String()
}

func (g *GHSOM) writeTree(b *strings.Builder, n *Node, indent int) {
	var total int
	for _, c := range n.UnitCount {
		total += c
	}
	fmt.Fprintf(b, "%s[node %d] depth=%d %dx%d units=%d records=%d\n",
		strings.Repeat("  ", indent), n.ID, n.Depth, n.Map.Rows(), n.Map.Cols(), n.Map.Units(), total)
	// Children in unit order for stable output.
	units := make([]int, 0, len(n.Children))
	for u := range n.Children {
		units = append(units, u)
	}
	sort.Ints(units)
	for _, u := range units {
		g.writeTree(b, n.Children[u], indent+1)
	}
}
