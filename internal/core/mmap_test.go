package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenMappingRoundTrip(t *testing.T) {
	c := trainedCompiled(t, 60)
	var buf bytes.Buffer
	if err := c.WriteBinaryAt(&buf, 0); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.cb")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapping(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !bytes.Equal(m.Bytes(), buf.Bytes()) {
		t.Fatal("mapping bytes differ from file contents")
	}
	if m.Len() != buf.Len() {
		t.Fatalf("Len = %d, want %d", m.Len(), buf.Len())
	}
	loaded, err := ReadCompiledBinaryBytes(m.Bytes(), true)
	if err != nil {
		t.Fatal(err)
	}
	if m.IsMmap() && loaded.MappedBytes() == 0 {
		t.Fatal("aligned blob over a real mmap did not zero-copy")
	}
	routesIdentical(t, c, loaded, 61)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}

func TestOpenMappingMissingAndEmpty(t *testing.T) {
	if _, err := OpenMapping(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file mapped")
	}
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapping(empty)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("empty file mapped to %d bytes", m.Len())
	}
	m.Close()
}
