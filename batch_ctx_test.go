package ghsom

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"ghsom/internal/leakcheck"
)

// ctxTestPipe caches one trained pipeline and its records for the
// ctx-dataplane tests of this file.
var ctxTestPipe struct {
	once sync.Once
	pipe *Pipeline
	recs []Record
	err  error
}

func testPipelineAndRecords(t *testing.T) (*Pipeline, []Record) {
	t.Helper()
	recs := testRecords(t)
	ctxTestPipe.once.Do(func() {
		ctxTestPipe.recs = recs
		ctxTestPipe.pipe, ctxTestPipe.err = TrainPipeline(recs, quickPipelineConfig())
	})
	if ctxTestPipe.err != nil {
		t.Fatal(ctxTestPipe.err)
	}
	return ctxTestPipe.pipe, ctxTestPipe.recs
}

// TestDetectBatchCtxMatchesDetectBatch pins that the ctx-aware entry
// with a never-canceled (and nil) context is byte-identical to
// DetectBatch at serial and parallel settings.
func TestDetectBatchCtxMatchesDetectBatch(t *testing.T) {
	pipe, recs := testPipelineAndRecords(t)
	eval := recs[:500]
	want, err := pipe.DetectBatch(eval, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 3, 0} {
		pipe.SetParallelism(par)
		for _, ctx := range []context.Context{nil, context.Background()} {
			got, err := pipe.DetectBatchCtx(ctx, eval, nil)
			if err != nil {
				t.Fatalf("par=%d: %v", par, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("par=%d record %d: ctx %+v, plain %+v", par, i, got[i], want[i])
				}
			}
		}
	}
	pipe.SetParallelism(0)
}

// TestDetectBatchCtxCanceledStopsAndDoesNotLeak drives canceled calls —
// pre-canceled and canceled mid-flight — through the batch dataplane at
// several parallelism settings and verifies ctx.Err() is reported and no
// worker goroutines outlive the call.
func TestDetectBatchCtxCanceledStopsAndDoesNotLeak(t *testing.T) {
	leakcheck.Check(t)
	pipe, recs := testPipelineAndRecords(t)
	big := make([]Record, 0, 8*len(recs))
	for len(big) < 8*len(recs) {
		big = append(big, recs...)
	}
	for _, par := range []int{1, 4, 0} {
		pipe.SetParallelism(par)
		// Pre-canceled: no chunk may run; the canonical error comes back.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := pipe.DetectBatchCtx(ctx, big, nil); !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d pre-canceled err = %v, want context.Canceled", par, err)
		}
		// Cancel mid-flight: the call must return promptly, either whole
		// (nil — the race went to completion) or canceled.
		ctx2, cancel2 := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := pipe.DetectBatchCtx(ctx2, big, nil)
			done <- err
		}()
		cancel2()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d mid-flight err = %v, want nil (already done) or Canceled", par, err)
		}
	}
	pipe.SetParallelism(0)
}

// TestDetectBatchRejectsNaNPoison pins the inference-side non-finite
// guard on the record path: a NaN-poisoned numeric feature fails its own
// record by index instead of silently poisoning the verdict.
func TestDetectBatchRejectsNaNPoison(t *testing.T) {
	pipe, recs := testPipelineAndRecords(t)
	eval := append([]Record(nil), recs[:10]...)
	eval[4].SrcBytes = -7 // log1p(-7) = NaN after the log transform
	_, err := pipe.DetectBatch(eval, nil)
	if err == nil || !strings.Contains(err.Error(), "record 4") || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("err = %v, want non-finite failure naming record 4", err)
	}
	// The clean prefix still classifies.
	if _, err := pipe.DetectBatch(eval[:4], nil); err != nil {
		t.Fatal(err)
	}
}

// TestDetectColumnarRejectsNaNPoison pins the guard on the wire path: a
// frame whose raw float64 column carries NaN (inexpressible in JSON, but
// trivial in the columnar format) fails with the record named.
func TestDetectColumnarRejectsNaNPoison(t *testing.T) {
	pipe, recs := testPipelineAndRecords(t)
	poison := append([]Record(nil), recs[:8]...)
	poison[5].SameSrvRate = math.NaN()
	var buf bytes.Buffer
	if err := WriteColumnarBatch(&buf, poison, ColumnarWriteOptions{}); err != nil {
		t.Fatal(err)
	}
	var cb ColumnarBatch
	if err := ReadColumnarBatch(&buf, &cb, DefaultColumnarLimits()); err != nil {
		t.Fatal(err)
	}
	_, err := pipe.DetectColumnar(&cb, nil)
	if err == nil || !strings.Contains(err.Error(), "record 5") || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("err = %v, want non-finite failure naming record 5", err)
	}
}
