package ghsom

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// batchEvalRecords builds a mixed normal/attack evaluation batch from a
// second trafficgen seed (so it differs from the training trace) and
// injects records with services outside the training vocabulary, which
// must fall into the encoder's "other" bucket on every path.
func batchEvalRecords(t *testing.T) []Record {
	t.Helper()
	recs, err := GenerateTraffic(SmallScenario(23))
	if err != nil {
		t.Fatal(err)
	}
	recs = recs[:1500]
	for i := 0; i < len(recs); i += 13 {
		recs[i].Service = "unseen_service_xyz"
	}
	return recs
}

// TestDetectBatchMatchesDetectAndDetectAll is the batch-dataplane
// equivalence property: per-record Detect, DetectAll, and DetectBatch
// (with and without a reused output slice) must produce byte-identical
// predictions on mixed traffic with unseen services, at every
// Parallelism setting.
func TestDetectBatchMatchesDetectAndDetectAll(t *testing.T) {
	train := testRecords(t)
	pipe, err := TrainPipeline(train, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	eval := batchEvalRecords(t)

	want := make([]Prediction, len(eval))
	for i := range eval {
		p, err := pipe.Detect(&eval[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}

	var reused []Prediction
	for _, par := range []int{1, 2, 8, 0} {
		pipe.SetParallelism(par)
		all, err := pipe.DetectAll(eval)
		if err != nil {
			t.Fatal(err)
		}
		reused, err = pipe.DetectBatch(eval, reused)
		if err != nil {
			t.Fatal(err)
		}
		for i := range eval {
			if all[i] != want[i] {
				t.Fatalf("par=%d record %d: DetectAll %+v, Detect %+v", par, i, all[i], want[i])
			}
			if reused[i] != want[i] {
				t.Fatalf("par=%d record %d: DetectBatch %+v, Detect %+v", par, i, reused[i], want[i])
			}
		}
	}
}

// TestDetectBatchReusesOutputSlice verifies the documented buffer-reuse
// contract: an output slice with sufficient capacity is written in place,
// not reallocated.
func TestDetectBatchReusesOutputSlice(t *testing.T) {
	train := testRecords(t)
	pipe, err := TrainPipeline(train, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	eval := batchEvalRecords(t)[:300]
	out := make([]Prediction, 0, len(eval))
	got, err := pipe.DetectBatch(eval, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(eval) {
		t.Fatalf("got %d predictions for %d records", len(got), len(eval))
	}
	if &got[0] != &out[:1][0] {
		t.Error("DetectBatch reallocated an output slice with sufficient capacity")
	}
}

// TestDetectBatchFirstErrorSemantics verifies batch failure reports the
// lowest-index bad record, like a serial loop.
func TestDetectBatchFirstErrorSemantics(t *testing.T) {
	train := testRecords(t)
	pipe, err := TrainPipeline(train, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	eval := batchEvalRecords(t)[:800]
	for _, i := range []int{700, 3, 500} {
		eval[i].Flag = "BOGUS"
	}
	for _, par := range []int{1, 4} {
		pipe.SetParallelism(par)
		_, err := pipe.DetectBatch(eval, nil)
		if err == nil || !strings.Contains(err.Error(), "record 3") {
			t.Errorf("par=%d: err = %v, want lowest bad record 3", par, err)
		}
	}
}

// TestPipelineSaveLoadPersistsConfig verifies envelope v2 round-trips the
// pipeline-level training configuration that v1 dropped.
func TestPipelineSaveLoadPersistsConfig(t *testing.T) {
	train := testRecords(t)
	cfg := quickPipelineConfig()
	cfg.TrainCapPerLabel = 456
	cfg.Seed = 77
	cfg.Parallelism = 3
	pipe, err := TrainPipeline(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pipe.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Config()
	if got.TrainCapPerLabel != 456 || got.Seed != 77 || got.Parallelism != 3 {
		t.Errorf("loaded config = cap %d seed %d par %d, want 456/77/3",
			got.TrainCapPerLabel, got.Seed, got.Parallelism)
	}
	if got.LogTransform != cfg.LogTransform {
		t.Errorf("loaded LogTransform = %v", got.LogTransform)
	}
	if got.Model.Tau1 != cfg.Model.Tau1 || got.Model.Tau2 != cfg.Model.Tau2 {
		t.Errorf("loaded model config = %+v", got.Model)
	}
	if got.Detector.QEQuantile != pipe.Config().Detector.QEQuantile &&
		got.Detector.QEQuantile != 0.99 {
		t.Errorf("loaded detector config = %+v", got.Detector)
	}
}

// TestLoadPipelineVersion1Compat verifies a v1 envelope (no config
// fields) still loads, with the config fields at their zero values.
func TestLoadPipelineVersion1Compat(t *testing.T) {
	train := testRecords(t)
	pipe, err := TrainPipeline(train, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pipe.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Rewrite the envelope as version 1 without the v2 config fields.
	var env map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	env["version"] = json.RawMessage("1")
	delete(env, "trainCapPerLabel")
	delete(env, "seed")
	delete(env, "parallelism")
	v1, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 envelope rejected: %v", err)
	}
	if got := loaded.Config(); got.TrainCapPerLabel != 0 || got.Seed != 0 || got.Parallelism != 0 {
		t.Errorf("v1 config fields = %+v, want zero values", got)
	}
	// Verdicts still identical after the v1 load.
	for i := 0; i < len(train); i += 211 {
		p1, err := pipe.Detect(&train[i])
		if err != nil {
			t.Fatal(err)
		}
		p2, err := loaded.Detect(&train[i])
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatalf("record %d verdict differs after v1 load: %+v vs %+v", i, p1, p2)
		}
	}
}
