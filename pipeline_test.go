package ghsom

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ghsom/internal/anomaly"
	"ghsom/internal/metrics"
)

// quickPipelineConfig keeps model training fast for tests.
func quickPipelineConfig() PipelineConfig {
	cfg := DefaultPipelineConfig()
	cfg.Model.EpochsPerGrowth = 3
	cfg.Model.FineTuneEpochs = 3
	cfg.Model.MaxGrowIters = 6
	cfg.Model.MaxDepth = 3
	cfg.TrainCapPerLabel = 800
	return cfg
}

// testRecords caches a small generated dataset across tests.
func testRecords(t *testing.T) []Record {
	t.Helper()
	if testing.Short() {
		t.Skip("pipeline integration test; skipped with -short")
	}
	recs, err := GenerateTraffic(SmallScenario(11))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestTrainPipelineAndDetect(t *testing.T) {
	recs := testRecords(t)
	pipe, err := TrainPipeline(recs, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Model() == nil || pipe.Detector() == nil {
		t.Fatal("pipeline missing components")
	}

	// The pipeline must achieve reasonable quality on its own training
	// distribution: binary accuracy well above the majority-class rate.
	var outcome metrics.BinaryOutcome
	preds, err := pipe.DetectAll(recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		outcome.AddBinary(recs[i].IsAttack(), preds[i].Attack)
	}
	if outcome.Accuracy() < 0.85 {
		t.Errorf("in-sample binary accuracy = %v, want >= 0.85 (%v)", outcome.Accuracy(), outcome)
	}
	if outcome.DetectionRate() < 0.85 {
		t.Errorf("in-sample detection rate = %v (%v)", outcome.DetectionRate(), outcome)
	}
}

func TestTrainPipelineEmpty(t *testing.T) {
	if _, err := TrainPipeline(nil, DefaultPipelineConfig()); !errors.Is(err, ErrEmptyTrainingSet) {
		t.Errorf("empty training err = %v", err)
	}
}

func TestPipelineScoreOrdering(t *testing.T) {
	recs := testRecords(t)
	pipe, err := TrainPipeline(recs, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Mean score of attack records must exceed mean score of normals.
	var attackSum, normalSum float64
	var attackN, normalN int
	for i := range recs {
		s, err := pipe.Score(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		if recs[i].IsAttack() {
			attackSum += s
			attackN++
		} else {
			normalSum += s
			normalN++
		}
	}
	if attackSum/float64(attackN) <= normalSum/float64(normalN) {
		t.Errorf("mean attack score %v <= mean normal score %v",
			attackSum/float64(attackN), normalSum/float64(normalN))
	}
}

func TestPipelineSaveLoadRoundTrip(t *testing.T) {
	recs := testRecords(t)
	pipe, err := TrainPipeline(recs, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pipe.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical verdicts on a sample of records.
	for i := 0; i < len(recs); i += 97 {
		p1, err := pipe.Detect(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		p2, err := loaded.Detect(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatalf("record %d verdict differs after round trip: %+v vs %+v", i, p1, p2)
		}
	}
}

func TestLoadPipelineRejectsGarbage(t *testing.T) {
	if _, err := LoadPipeline(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadPipeline(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestPipelineStream(t *testing.T) {
	recs := testRecords(t)
	pipe, err := TrainPipeline(recs, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream, err := pipe.Stream(anomaly.StreamConfig{WindowSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs[:500] {
		x, err := pipe.Encode(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		stream.Observe(x)
	}
	if stream.Total() != 500 {
		t.Errorf("stream Total = %d", stream.Total())
	}
}

func TestPipelineExplain(t *testing.T) {
	recs := testRecords(t)
	pipe, err := TrainPipeline(recs, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Find a detected attack and explain it.
	for i := range recs {
		if !recs[i].IsAttack() {
			continue
		}
		v, err := pipe.Detect(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !v.Attack {
			continue
		}
		contribs, err := pipe.Explain(&recs[i], 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(contribs) == 0 || len(contribs) > 5 {
			t.Fatalf("got %d contributions", len(contribs))
		}
		// Ordered by decreasing magnitude, names non-empty, deltas
		// consistent.
		prev := mathInf()
		for _, c := range contribs {
			if c.Feature == "" {
				t.Error("empty feature name")
			}
			m := abs(c.Delta)
			if m > prev+1e-12 {
				t.Error("contributions not ordered by magnitude")
			}
			prev = m
			if abs(c.Value-c.Prototype-c.Delta) > 1e-9 {
				t.Error("delta inconsistent with value/prototype")
			}
		}
		return
	}
	t.Fatal("no detected attack to explain")
}

func mathInf() float64 { return 1e308 }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestCategoryAliases(t *testing.T) {
	if CategoryOf("neptune") != DoS {
		t.Error("alias CategoryOf broken")
	}
	if Normal.String() != "normal" {
		t.Error("alias constants broken")
	}
}

func TestScenarioConstructors(t *testing.T) {
	for name, cfg := range map[string]GeneratorConfig{
		"kdd99": KDD99Scenario(1),
		"small": SmallScenario(1),
		"hard":  HardScenario(1),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s scenario invalid: %v", name, err)
		}
	}
	if KDD99Scenario(1).NormalSessions <= SmallScenario(1).NormalSessions {
		t.Error("kdd99 scenario should be larger than small")
	}
	if HardScenario(1).Noise <= KDD99Scenario(1).Noise {
		t.Error("hard scenario should be noisier")
	}
}

func TestPipelineConfigAccessorAndEncodeErrors(t *testing.T) {
	recs := testRecords(t)
	cfg := quickPipelineConfig()
	pipe, err := TrainPipeline(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := pipe.Config(); got.TrainCapPerLabel != cfg.TrainCapPerLabel {
		t.Errorf("Config() = %+v", got)
	}
	// Un-encodable record (unknown flag) must error through Detect,
	// Score, and Explain.
	bad := recs[0]
	bad.Flag = "BOGUS"
	if _, err := pipe.Detect(&bad); err == nil {
		t.Error("Detect accepted bad record")
	}
	if _, err := pipe.Score(&bad); err == nil {
		t.Error("Score accepted bad record")
	}
	if _, err := pipe.Explain(&bad, 3); err == nil {
		t.Error("Explain accepted bad record")
	}
	if _, err := pipe.DetectAll([]Record{recs[0], bad}); err == nil {
		t.Error("DetectAll accepted bad record")
	}
}

func TestTrainModelDirect(t *testing.T) {
	data := [][]float64{{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}}
	cfg := DefaultModelConfig()
	cfg.MinMapData = 1
	cfg.EpochsPerGrowth = 2
	cfg.FineTuneEpochs = 2
	cfg.MaxGrowIters = 2
	m, err := TrainModel(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 2 {
		t.Errorf("Dim = %d", m.Dim())
	}
}
