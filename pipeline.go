package ghsom

import (
	"errors"
	"fmt"
	"math/rand"

	"ghsom/internal/anomaly"
	"ghsom/internal/core"
	"ghsom/internal/kdd"
	"ghsom/internal/preprocess"
)

// ErrEmptyTrainingSet is returned when TrainPipeline receives no records.
var ErrEmptyTrainingSet = errors.New("ghsom: empty training set")

// PipelineConfig bundles the configuration of the full detection chain.
type PipelineConfig struct {
	// Model configures the GHSOM.
	Model ModelConfig
	// Detector configures unit labeling and novelty thresholds.
	Detector DetectorConfig
	// LogTransform applies log1p to heavy-tailed volume features before
	// scaling (recommended; on in DefaultPipelineConfig).
	LogTransform bool
	// TrainCapPerLabel caps the records per label used for GHSOM weight
	// training, preventing the dominant DoS classes from starving
	// low-volume classes of map area. Zero disables capping. Detector
	// fitting always uses the full training set.
	TrainCapPerLabel int
	// Seed drives the label-capping subsample (the model has its own seed
	// in Model.Seed).
	Seed int64
}

// DefaultPipelineConfig returns the configuration used by the
// reproduction experiments.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Model:            DefaultModelConfig(),
		Detector:         DetectorConfig{},
		LogTransform:     true,
		TrainCapPerLabel: 3000,
		Seed:             1,
	}
}

// Pipeline is a trained end-to-end detector: encoder, scaler, GHSOM, and
// labeled-unit detector.
type Pipeline struct {
	encoder  *kdd.Encoder
	scaler   *preprocess.MinMaxScaler
	model    *core.GHSOM
	detector *anomaly.Detector
	cfg      PipelineConfig
}

// TrainPipeline builds the full detection chain from labeled records.
func TrainPipeline(records []Record, cfg PipelineConfig) (*Pipeline, error) {
	if len(records) == 0 {
		return nil, ErrEmptyTrainingSet
	}
	encoder := kdd.NewEncoder(records, kdd.EncoderConfig{LogTransform: cfg.LogTransform})
	raw, err := encoder.EncodeAll(records)
	if err != nil {
		return nil, fmt.Errorf("ghsom: encode training set: %w", err)
	}
	scaler := &preprocess.MinMaxScaler{}
	scaled, err := preprocess.FitTransform(scaler, raw)
	if err != nil {
		return nil, fmt.Errorf("ghsom: scale training set: %w", err)
	}
	labels := kdd.Labels(records)

	modelData := scaled
	if cfg.TrainCapPerLabel > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed))
		idx := preprocess.CapPerKey(labels, cfg.TrainCapPerLabel, rng)
		modelData = preprocess.Gather(scaled, idx)
	}
	model, err := core.Train(modelData, cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("ghsom: train model: %w", err)
	}
	det, err := anomaly.Fit(anomaly.GHSOMQuantizer{Model: model}, scaled, labels, cfg.Detector)
	if err != nil {
		return nil, fmt.Errorf("ghsom: fit detector: %w", err)
	}
	return &Pipeline{
		encoder:  encoder,
		scaler:   scaler,
		model:    model,
		detector: det,
		cfg:      cfg,
	}, nil
}

// Encode converts a record into the scaled feature vector the model sees.
func (p *Pipeline) Encode(rec *Record) ([]float64, error) {
	raw, err := p.encoder.Encode(rec)
	if err != nil {
		return nil, fmt.Errorf("ghsom: encode: %w", err)
	}
	scaled, err := p.scaler.Transform(raw)
	if err != nil {
		return nil, fmt.Errorf("ghsom: scale: %w", err)
	}
	return scaled, nil
}

// Detect classifies one record.
func (p *Pipeline) Detect(rec *Record) (Prediction, error) {
	x, err := p.Encode(rec)
	if err != nil {
		return Prediction{}, err
	}
	return p.detector.Classify(x), nil
}

// DetectAll classifies a batch of records.
func (p *Pipeline) DetectAll(records []Record) ([]Prediction, error) {
	out := make([]Prediction, len(records))
	for i := range records {
		pr, err := p.Detect(&records[i])
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		out[i] = pr
	}
	return out, nil
}

// Score returns the anomaly score of a record (higher = more anomalous).
func (p *Pipeline) Score(rec *Record) (float64, error) {
	x, err := p.Encode(rec)
	if err != nil {
		return 0, err
	}
	return p.detector.Score(x), nil
}

// FeatureContribution explains one feature's share of a verdict: how far
// the record sits from its matched prototype along that feature.
type FeatureContribution struct {
	// Feature is the encoded dimension name (e.g. "serror_rate",
	// "flag=S0").
	Feature string
	// Value is the record's scaled feature value.
	Value float64
	// Prototype is the matched unit's value for the feature.
	Prototype float64
	// Delta is Value - Prototype.
	Delta float64
}

// Explain returns the top-k features separating the record from its
// matched prototype, most influential first — the "why was this flagged"
// view. Returns nil if the record cannot be encoded.
func (p *Pipeline) Explain(rec *Record, k int) ([]FeatureContribution, error) {
	x, err := p.Encode(rec)
	if err != nil {
		return nil, err
	}
	contribs := p.detector.Explain(x, k)
	if contribs == nil {
		return nil, nil
	}
	names := p.encoder.FeatureNames()
	out := make([]FeatureContribution, 0, len(contribs))
	for _, c := range contribs {
		if c.Dim < 0 || c.Dim >= len(names) {
			continue
		}
		out = append(out, FeatureContribution{
			Feature:   names[c.Dim],
			Value:     x[c.Dim],
			Prototype: x[c.Dim] - c.Delta,
			Delta:     c.Delta,
		})
	}
	return out, nil
}

// Model returns the trained GHSOM for structural inspection.
func (p *Pipeline) Model() *Model { return p.model }

// Detector returns the fitted anomaly detector.
func (p *Pipeline) Detector() *anomaly.Detector { return p.detector }

// Config returns the pipeline's training configuration.
func (p *Pipeline) Config() PipelineConfig { return p.cfg }

// Stream wraps the pipeline's detector for online use with the given
// rolling-window alarm configuration.
func (p *Pipeline) Stream(cfg anomaly.StreamConfig) (*anomaly.Stream, error) {
	return anomaly.NewStream(p.detector, cfg)
}
