package ghsom

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"ghsom/internal/anomaly"
	"ghsom/internal/core"
	"ghsom/internal/kdd"
	"ghsom/internal/parallel"
	"ghsom/internal/preprocess"
	"ghsom/internal/vecmath"
)

// ErrEmptyTrainingSet is returned when TrainPipeline receives no records.
var ErrEmptyTrainingSet = errors.New("ghsom: empty training set")

// PipelineConfig bundles the configuration of the full detection chain.
type PipelineConfig struct {
	// Model configures the GHSOM.
	Model ModelConfig
	// Detector configures unit labeling and novelty thresholds.
	Detector DetectorConfig
	// LogTransform applies log1p to heavy-tailed volume features before
	// scaling (recommended; on in DefaultPipelineConfig).
	LogTransform bool
	// TrainCapPerLabel caps the records per label used for GHSOM weight
	// training, preventing the dominant DoS classes from starving
	// low-volume classes of map area. Zero disables capping. Detector
	// fitting always uses the full training set.
	TrainCapPerLabel int
	// Seed drives the label-capping subsample (the model has its own seed
	// in Model.Seed).
	Seed int64
	// Parallelism bounds the workers used by the pipeline's own batch
	// stages — training-set encoding/scaling and DetectAll — with 0
	// meaning GOMAXPROCS and 1 forcing serial execution. Model training
	// and detector fitting read their own knobs (Model.Parallelism,
	// Detector.Parallelism), which default to GOMAXPROCS too. Results are
	// bit-for-bit identical for every setting.
	Parallelism int
}

// DefaultPipelineConfig returns the production pipeline configuration.
// Unlike the paper-reproduction eval suite (which keeps the paper's
// online operating point), the pipeline trains its maps with the
// deterministic batch rule: on the flat training dataplane the batch
// kernel's BMU-class accumulation is several times faster than online
// updates, and its results are bit-for-bit reproducible at every
// Parallelism setting. Set Model.Batch = false to restore the online
// rule.
func DefaultPipelineConfig() PipelineConfig {
	cfg := PipelineConfig{
		Model:            DefaultModelConfig(),
		Detector:         DetectorConfig{},
		LogTransform:     true,
		TrainCapPerLabel: 3000,
		Seed:             1,
	}
	cfg.Model.Batch = true
	return cfg
}

// Pipeline is a trained end-to-end detector: encoder, scaler, GHSOM, and
// labeled-unit detector. Inference routes through the compiled model —
// the flat-arena, table-driven form built by core.Compile — while the
// pointer-tree model stays available for structural inspection.
type Pipeline struct {
	encoder  *kdd.Encoder
	scaler   *preprocess.MinMaxScaler
	model    *core.GHSOM
	compiled *core.Compiled
	detector *anomaly.Detector
	cfg      PipelineConfig
	// envVersion is the envelope version the pipeline was loaded from
	// (pipelineVersion for freshly trained pipelines).
	envVersion int
	// modelOnce guards the lazy Decompile of loaded pipelines: rebuilding
	// the pointer tree copies the whole weight arena, so it is deferred
	// until Model() is first called. Mapped loads in particular stay
	// copy-free through registry startup this way.
	modelOnce sync.Once
	// mapping is the file mapping a mapped load's model views, released by
	// Close. Nil for trained, JSON-loaded, and stream-loaded pipelines.
	mapping *core.Mapping
	// bufPool recycles per-worker inference arenas across Detect and
	// DetectBatch calls, so steady-state inference performs no per-record
	// heap allocation.
	bufPool sync.Pool
}

// detectChunk is the largest number of records one DetectBatch worker
// processes per pooled arena; batchChunks shrinks it so a batch always
// splits across the available workers. detectGrain is the floor: one
// GEMM tile of rows, so a small batch never splinters into chunks too
// thin for the blocked BMU descent to amortize (the oversubscription
// fix — fan-out below one tile per worker costs more than it buys).
const (
	detectChunk = 256
	detectGrain = vecmath.DefaultTileRows
)

// batchChunks returns the chunk size and chunk count for an n-record
// batch at the given Parallelism knob: at most detectChunk records per
// chunk, at least one chunk per worker so a modest batch (e.g. one
// micro-batch of a few hundred records) still spreads across cores, and
// never less than detectGrain records per chunk. Chunking never affects
// results — rows are independent — only the worker fan-out.
func batchChunks(par, n int) (size, count int) {
	w := parallel.WorkersGrain(par, n, detectGrain)
	size = (n + w - 1) / w
	if size > detectChunk {
		size = detectChunk
	}
	if size < detectGrain {
		size = detectGrain
	}
	return size, (n + size - 1) / size
}

// inferenceBuffer is the reusable flat encode/scale arena of the
// inference dataplane.
type inferenceBuffer struct {
	flat []float64
}

// getBuf returns an arena whose flat slice has capacity at least size.
func (p *Pipeline) getBuf(size int) *inferenceBuffer {
	b, _ := p.bufPool.Get().(*inferenceBuffer)
	if b == nil {
		b = &inferenceBuffer{}
	}
	if cap(b.flat) < size {
		b.flat = make([]float64, size)
	}
	return b
}

func (p *Pipeline) putBuf(b *inferenceBuffer) { p.bufPool.Put(b) }

// encodeScaleRows is the single encode+scale kernel under TrainPipeline
// and DetectBatch: it writes records[r] to flat[r*d : (r+1)*d], scaled in
// place when scaler is non-nil (nil during training, before the scaler is
// fitted). base offsets record indices in error messages so a chunk
// reports positions in the caller's full batch.
func encodeScaleRows(enc *kdd.Encoder, scaler *preprocess.MinMaxScaler, records []Record, base int, flat []float64) error {
	d := enc.Dim()
	for r := range records {
		row := flat[r*d : (r+1)*d]
		if err := enc.EncodeInto(&records[r], row); err != nil {
			return fmt.Errorf("record %d: %w", base+r, err)
		}
		if scaler != nil {
			// Inference-side input hygiene (training encodes with a nil
			// scaler and keeps its historical behavior): a NaN-poisoned
			// record — e.g. a negative count driven through the log
			// transform — would survive min-max scaling, poison its
			// verdict, and break NDJSON response encoding downstream.
			// Reject it here, naming the record, so the serving layer can
			// quarantine exactly that job.
			if err := firstNonFinite(row, len(row), base+r); err != nil {
				return err
			}
			if err := scaler.TransformInPlace(row); err != nil {
				return fmt.Errorf("record %d: %w", base+r, err)
			}
		}
	}
	return nil
}

// TrainPipeline builds the full detection chain from labeled records. The
// training set is encoded into one flat row-major matrix and scaled in
// place — the same batch dataplane DetectBatch runs on — before the GHSOM
// is grown and the detector fitted. Both the growth loop's per-epoch BMU
// passes and the detector's fitting quantization run on the blocked GEMM
// BMU engine (see internal/vecmath), whose results are bit-identical to
// the scalar scans.
func TrainPipeline(records []Record, cfg PipelineConfig) (*Pipeline, error) {
	if len(records) == 0 {
		return nil, ErrEmptyTrainingSet
	}
	encoder := kdd.NewEncoder(records, kdd.EncoderConfig{LogTransform: cfg.LogTransform})
	d := encoder.Dim()
	n := len(records)
	flat := make([]float64, n*d)
	chunk, chunks := batchChunks(cfg.Parallelism, n)
	err := parallel.ForEachErr(cfg.Parallelism, chunks, func(c int) error {
		lo := c * chunk
		hi := min(lo+chunk, n)
		return encodeScaleRows(encoder, nil, records[lo:hi], lo, flat[lo*d:hi*d])
	})
	if err != nil {
		return nil, fmt.Errorf("ghsom: encode training set: %w", err)
	}
	// Row views share the flat backing array: fitting reads them, the
	// in-place batch transform below rescales them, and the model and
	// detector train on the same storage without another copy.
	scaled := make([][]float64, n)
	for i := range scaled {
		scaled[i] = flat[i*d : (i+1)*d : (i+1)*d]
	}
	scaler := &preprocess.MinMaxScaler{}
	if err := scaler.Fit(scaled); err != nil {
		return nil, fmt.Errorf("ghsom: scale training set: %w", err)
	}
	err = parallel.ForEachErr(cfg.Parallelism, chunks, func(c int) error {
		lo := c * chunk
		hi := min(lo+chunk, n)
		return scaler.TransformBatch(flat[lo*d:hi*d], d)
	})
	if err != nil {
		return nil, fmt.Errorf("ghsom: scale training set: %w", err)
	}
	labels := kdd.Labels(records)

	// The model trains directly on the encoded flat matrix; the label cap
	// passes its subsample as an index selection, so no rows are copied
	// between encoding and GHSOM growth.
	mat, err := vecmath.MatrixOver(flat, n, d)
	if err != nil {
		return nil, fmt.Errorf("ghsom: training matrix: %w", err)
	}
	var modelIdx []int
	if cfg.TrainCapPerLabel > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed))
		modelIdx = preprocess.CapPerKey(labels, cfg.TrainCapPerLabel, rng)
	}
	model, err := core.TrainMatrix(mat, modelIdx, cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("ghsom: train model: %w", err)
	}
	// Compile once at train time: detector fitting and all inference run
	// on the flat-arena table-driven descent.
	compiled := core.Compile(model)
	det, err := anomaly.Fit(anomaly.NewGHSOMQuantizer(compiled), scaled, labels, cfg.Detector)
	if err != nil {
		return nil, fmt.Errorf("ghsom: fit detector: %w", err)
	}
	return &Pipeline{
		encoder:    encoder,
		scaler:     scaler,
		model:      model,
		compiled:   compiled,
		detector:   det,
		cfg:        cfg,
		envVersion: pipelineVersion,
	}, nil
}

// Encode converts a record into the scaled feature vector the model sees.
// The returned slice is freshly allocated and owned by the caller.
func (p *Pipeline) Encode(rec *Record) ([]float64, error) {
	out := make([]float64, p.encoder.Dim())
	if err := p.encoder.EncodeInto(rec, out); err != nil {
		return nil, fmt.Errorf("ghsom: encode: %w", err)
	}
	if err := p.scaler.TransformInPlace(out); err != nil {
		return nil, fmt.Errorf("ghsom: scale: %w", err)
	}
	return out, nil
}

// Detect classifies one record. It runs on the same flat dataplane as
// DetectBatch — a pooled single-row arena, in-place scaling, and the
// shared verdict kernel — so a lone record costs no steady-state heap
// allocation either.
func (p *Pipeline) Detect(rec *Record) (Prediction, error) {
	d := p.encoder.Dim()
	buf := p.getBuf(d)
	defer p.putBuf(buf)
	row := buf.flat[:d]
	if err := p.encoder.EncodeInto(rec, row); err != nil {
		return Prediction{}, fmt.Errorf("ghsom: encode: %w", err)
	}
	if err := p.scaler.TransformInPlace(row); err != nil {
		return Prediction{}, fmt.Errorf("ghsom: scale: %w", err)
	}
	return p.detector.Classify(row), nil
}

// DetectAll classifies a batch of records, allocating the prediction
// slice. It is DetectBatch without buffer reuse on the output; see
// DetectBatch for the batch dataplane contract. On failure the error of
// the lowest-index bad record is returned, matching serial semantics.
func (p *Pipeline) DetectAll(records []Record) ([]Prediction, error) {
	return p.DetectBatch(records, nil)
}

// DetectBatch classifies a batch of records into out, returning
// out[:len(records)]. When out is nil or under capacity a fresh slice is
// allocated, so steady-state callers should pass the slice returned by
// the previous call to reuse it. Records are processed in chunks of a few
// hundred rows, concurrently on the pipeline's configured Parallelism;
// each worker encodes and scales its chunk inside a pooled flat arena and
// classifies it through the detector's batch path — whose hierarchy
// descent runs on the blocked GEMM BMU engine, level-synchronously per
// chunk — so in steady state the call performs no per-record heap
// allocation. Predictions are
// positionally stable and byte-identical to calling Detect per record at
// every Parallelism setting. On failure the error of the lowest-index bad
// record is returned and out's contents are unspecified.
func (p *Pipeline) DetectBatch(records []Record, out []Prediction) ([]Prediction, error) {
	return p.DetectBatchCtx(nil, records, out)
}

// DetectBatchCtx is DetectBatch with cancellation: ctx is checked only
// between chunks (see parallel.ForEachChunkErrCtx), so an uncanceled
// call executes the identical chunked computation tree as DetectBatch —
// the bit-identity contract holds — while a canceled call stops
// mid-fan-out without waiting for the tail chunks and returns ctx.Err()
// (outputs are then unspecified). A nil ctx never cancels.
func (p *Pipeline) DetectBatchCtx(ctx context.Context, records []Record, out []Prediction) ([]Prediction, error) {
	n := len(records)
	if cap(out) < n {
		out = make([]Prediction, n)
	}
	out = out[:n]
	d := p.encoder.Dim()
	chunk, _ := batchChunks(p.cfg.Parallelism, n)
	err := parallel.ForEachChunkErrCtx(ctx, p.cfg.Parallelism, n, chunk, func(w, lo, hi int) error {
		buf := p.getBuf((hi - lo) * d)
		defer p.putBuf(buf)
		flat := buf.flat[:(hi-lo)*d]
		if err := encodeScaleRows(p.encoder, p.scaler, records[lo:hi], lo, flat); err != nil {
			return err
		}
		// Serial within the chunk: this loop is already one worker of the
		// outer fan-out, so the detector must not multiply it.
		return p.detector.ClassifyBatchAt(flat, hi-lo, d, out[lo:hi], 1)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DetectColumnar classifies one decoded columnar frame into out,
// returning out[:cb.Rows()]. It is the wire-format twin of DetectBatch:
// the frame's symbol tables are bound to the encoder's vocabulary once,
// then each worker expands its chunk of column runs directly into a
// pooled flat arena — decode, one-hot, log transform, and scaling fused
// in a single pass with no intermediate Record structs — and classifies
// it through the detector's batch path. Verdicts are byte-identical to
// DetectBatch over the same records at every Parallelism setting, and
// steady state performs no per-record heap allocation. On failure the
// error of the lowest-index bad record is returned and out's contents
// are unspecified.
func (p *Pipeline) DetectColumnar(cb *ColumnarBatch, out []Prediction) ([]Prediction, error) {
	return p.DetectColumnarCtx(nil, cb, out)
}

// DetectColumnarCtx is DetectColumnar with cancellation checkpoints
// between chunks, under the same contract as DetectBatchCtx. It also
// rejects non-finite feature values: unlike NDJSON (where JSON cannot
// express NaN/Inf), a columnar frame carries raw float64 columns, and a
// NaN smuggled through would poison the verdict and break the NDJSON
// response encoding downstream. The failing record's index is named so
// the serving layer can quarantine exactly that job.
func (p *Pipeline) DetectColumnarCtx(ctx context.Context, cb *ColumnarBatch, out []Prediction) ([]Prediction, error) {
	if err := p.encoder.BindColumnar(cb); err != nil {
		return nil, fmt.Errorf("ghsom: bind columnar frame: %w", err)
	}
	n := cb.Rows()
	if cap(out) < n {
		out = make([]Prediction, n)
	}
	out = out[:n]
	d := p.encoder.Dim()
	chunk, _ := batchChunks(p.cfg.Parallelism, n)
	err := parallel.ForEachChunkErrCtx(ctx, p.cfg.Parallelism, n, chunk, func(w, lo, hi int) error {
		buf := p.getBuf((hi - lo) * d)
		defer p.putBuf(buf)
		flat := buf.flat[:(hi-lo)*d]
		if err := p.encoder.EncodeColumnarRows(cb, lo, hi, flat); err != nil {
			return err
		}
		if err := firstNonFinite(flat, d, lo); err != nil {
			return err
		}
		if err := p.scaler.TransformBatch(flat, d); err != nil {
			return err
		}
		return p.detector.ClassifyBatchAt(flat, hi-lo, d, out[lo:hi], 1)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// firstNonFinite scans an encoded chunk for NaN/Inf features, reporting
// the lowest offending record (base offsets indices into the caller's
// full batch). One linear pass over values already hot in cache — noise
// next to the classify descent it guards.
func firstNonFinite(flat []float64, d, base int) error {
	for i, v := range flat {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("record %d: non-finite feature value", base+i/d)
		}
	}
	return nil
}

// Score returns the anomaly score of a record (higher = more anomalous).
func (p *Pipeline) Score(rec *Record) (float64, error) {
	x, err := p.Encode(rec)
	if err != nil {
		return 0, err
	}
	return p.detector.Score(x), nil
}

// FeatureContribution explains one feature's share of a verdict: how far
// the record sits from its matched prototype along that feature.
type FeatureContribution struct {
	// Feature is the encoded dimension name (e.g. "serror_rate",
	// "flag=S0").
	Feature string
	// Value is the record's scaled feature value.
	Value float64
	// Prototype is the matched unit's value for the feature.
	Prototype float64
	// Delta is Value - Prototype.
	Delta float64
}

// Explain returns the top-k features separating the record from its
// matched prototype, most influential first — the "why was this flagged"
// view. Returns nil if the record cannot be encoded.
func (p *Pipeline) Explain(rec *Record, k int) ([]FeatureContribution, error) {
	x, err := p.Encode(rec)
	if err != nil {
		return nil, err
	}
	contribs := p.detector.Explain(x, k)
	if contribs == nil {
		return nil, nil
	}
	names := p.encoder.FeatureNames()
	out := make([]FeatureContribution, 0, len(contribs))
	for _, c := range contribs {
		if c.Dim < 0 || c.Dim >= len(names) {
			continue
		}
		out = append(out, FeatureContribution{
			Feature:   names[c.Dim],
			Value:     x[c.Dim],
			Prototype: x[c.Dim] - c.Delta,
			Delta:     c.Delta,
		})
	}
	return out, nil
}

// Model returns the trained GHSOM for structural inspection. Pipelines
// loaded from the binary envelope rebuild the pointer tree from the
// compiled model on the first call (the rebuild copies the weight arena,
// which is why loading defers it); the result is cached.
func (p *Pipeline) Model() *Model {
	p.modelOnce.Do(func() {
		if p.model == nil {
			// The compiled model passed full structural validation at load
			// time, so decompilation cannot fail on it; a nil return here
			// would indicate memory corruption, not bad input.
			p.model, _ = p.compiled.Decompile()
		}
	})
	return p.model
}

// Close releases the file mapping backing a pipeline loaded with
// LoadPipelineFile in mapped mode. After Close the pipeline must not be
// used: its model tables alias the unmapped pages. Close is a no-op (and
// always safe) for heap-resident pipelines; it is not idempotent for
// mapped ones.
func (p *Pipeline) Close() error {
	m := p.mapping
	p.mapping = nil
	if m == nil {
		return nil
	}
	return m.Close()
}

// MappedBytes reports how many bytes of the pipeline's model are views
// over a file mapping (0 for heap-resident pipelines) — the
// page-cache-shared portion of the serving footprint.
func (p *Pipeline) MappedBytes() int { return p.compiled.MappedBytes() }

// Compiled returns the compiled (flat-arena) form of the model that the
// pipeline's inference routes on.
func (p *Pipeline) Compiled() *CompiledModel { return p.compiled }

// EnvelopeVersion reports the envelope version this pipeline was loaded
// from; freshly trained pipelines report the current version.
func (p *Pipeline) EnvelopeVersion() int { return p.envVersion }

// Detector returns the fitted anomaly detector.
func (p *Pipeline) Detector() *anomaly.Detector { return p.detector }

// Config returns the pipeline's training configuration.
func (p *Pipeline) Config() PipelineConfig { return p.cfg }

// SetParallelism adjusts the worker bound used by the pipeline's batch
// inference (DetectAll and the detector's ClassifyAll) on an already
// trained or loaded pipeline: 0 means GOMAXPROCS, 1 forces serial
// execution. Predictions are identical at every setting.
func (p *Pipeline) SetParallelism(par int) {
	p.cfg.Parallelism = par
	p.detector.SetParallelism(par)
}

// SetBMUPrecision adjusts the candidate-generation precision of the
// compiled model's routing descent on an already trained or loaded
// pipeline (loaded pipelines default to PrecisionAuto — like
// Parallelism, the knob is an execution detail never serialized into
// envelopes). Verdicts are bit-for-bit identical at every setting; see
// vecmath.Precision. Not safe to call concurrently with inference.
func (p *Pipeline) SetBMUPrecision(prec vecmath.Precision) {
	p.cfg.Model.BMUPrecision = prec
	p.compiled.SetBMUPrecision(prec)
}

// BMUPrecision returns the effective candidate-generation rung of the
// pipeline's compiled model (auto resolved against its widest codebook).
func (p *Pipeline) BMUPrecision() vecmath.Precision { return p.compiled.BMUPrecision() }

// Stream wraps the pipeline's detector for online use with the given
// rolling-window alarm configuration.
func (p *Pipeline) Stream(cfg anomaly.StreamConfig) (*anomaly.Stream, error) {
	return anomaly.NewStream(p.detector, cfg)
}
