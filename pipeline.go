package ghsom

import (
	"errors"
	"fmt"
	"math/rand"

	"ghsom/internal/anomaly"
	"ghsom/internal/core"
	"ghsom/internal/kdd"
	"ghsom/internal/parallel"
	"ghsom/internal/preprocess"
)

// ErrEmptyTrainingSet is returned when TrainPipeline receives no records.
var ErrEmptyTrainingSet = errors.New("ghsom: empty training set")

// PipelineConfig bundles the configuration of the full detection chain.
type PipelineConfig struct {
	// Model configures the GHSOM.
	Model ModelConfig
	// Detector configures unit labeling and novelty thresholds.
	Detector DetectorConfig
	// LogTransform applies log1p to heavy-tailed volume features before
	// scaling (recommended; on in DefaultPipelineConfig).
	LogTransform bool
	// TrainCapPerLabel caps the records per label used for GHSOM weight
	// training, preventing the dominant DoS classes from starving
	// low-volume classes of map area. Zero disables capping. Detector
	// fitting always uses the full training set.
	TrainCapPerLabel int
	// Seed drives the label-capping subsample (the model has its own seed
	// in Model.Seed).
	Seed int64
	// Parallelism bounds the workers used by the pipeline's own batch
	// stages — training-set encoding/scaling and DetectAll — with 0
	// meaning GOMAXPROCS and 1 forcing serial execution. Model training
	// and detector fitting read their own knobs (Model.Parallelism,
	// Detector.Parallelism), which default to GOMAXPROCS too. Results are
	// bit-for-bit identical for every setting.
	Parallelism int
}

// DefaultPipelineConfig returns the configuration used by the
// reproduction experiments.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Model:            DefaultModelConfig(),
		Detector:         DetectorConfig{},
		LogTransform:     true,
		TrainCapPerLabel: 3000,
		Seed:             1,
	}
}

// Pipeline is a trained end-to-end detector: encoder, scaler, GHSOM, and
// labeled-unit detector.
type Pipeline struct {
	encoder  *kdd.Encoder
	scaler   *preprocess.MinMaxScaler
	model    *core.GHSOM
	detector *anomaly.Detector
	cfg      PipelineConfig
}

// TrainPipeline builds the full detection chain from labeled records.
func TrainPipeline(records []Record, cfg PipelineConfig) (*Pipeline, error) {
	if len(records) == 0 {
		return nil, ErrEmptyTrainingSet
	}
	encoder := kdd.NewEncoder(records, kdd.EncoderConfig{LogTransform: cfg.LogTransform})
	raw, err := encodeAll(encoder, records, cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("ghsom: encode training set: %w", err)
	}
	scaler := &preprocess.MinMaxScaler{}
	if err := scaler.Fit(raw); err != nil {
		return nil, fmt.Errorf("ghsom: scale training set: %w", err)
	}
	scaled, err := transformAll(scaler, raw, cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("ghsom: scale training set: %w", err)
	}
	labels := kdd.Labels(records)

	modelData := scaled
	if cfg.TrainCapPerLabel > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed))
		idx := preprocess.CapPerKey(labels, cfg.TrainCapPerLabel, rng)
		modelData = preprocess.Gather(scaled, idx)
	}
	model, err := core.Train(modelData, cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("ghsom: train model: %w", err)
	}
	det, err := anomaly.Fit(anomaly.GHSOMQuantizer{Model: model}, scaled, labels, cfg.Detector)
	if err != nil {
		return nil, fmt.Errorf("ghsom: fit detector: %w", err)
	}
	return &Pipeline{
		encoder:  encoder,
		scaler:   scaler,
		model:    model,
		detector: det,
		cfg:      cfg,
	}, nil
}

// Encode converts a record into the scaled feature vector the model sees.
func (p *Pipeline) Encode(rec *Record) ([]float64, error) {
	raw, err := p.encoder.Encode(rec)
	if err != nil {
		return nil, fmt.Errorf("ghsom: encode: %w", err)
	}
	scaled, err := p.scaler.Transform(raw)
	if err != nil {
		return nil, fmt.Errorf("ghsom: scale: %w", err)
	}
	return scaled, nil
}

// Detect classifies one record.
func (p *Pipeline) Detect(rec *Record) (Prediction, error) {
	x, err := p.Encode(rec)
	if err != nil {
		return Prediction{}, err
	}
	return p.detector.Classify(x), nil
}

// DetectAll classifies a batch of records. Records are encoded and
// classified concurrently on the pipeline's configured Parallelism;
// predictions are positionally stable and identical to calling Detect per
// record. On failure the error of the lowest-index bad record is returned,
// matching serial semantics.
func (p *Pipeline) DetectAll(records []Record) ([]Prediction, error) {
	out := make([]Prediction, len(records))
	err := forEachFirstErr(p.cfg.Parallelism, len(records), func(i int) error {
		pr, err := p.Detect(&records[i])
		if err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		out[i] = pr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// forEachFirstErr runs fn over [0, n) on up to p workers and returns the
// error of the lowest failing index, matching serial loop semantics.
func forEachFirstErr(p, n int, fn func(i int) error) error {
	errs := make([]error, n)
	parallel.ForEach(p, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// encodeAll encodes every record on up to p workers, preserving record
// order and first-error semantics.
func encodeAll(enc *kdd.Encoder, records []Record, p int) ([][]float64, error) {
	out := make([][]float64, len(records))
	err := forEachFirstErr(p, len(records), func(i int) error {
		v, err := enc.Encode(&records[i])
		if err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// transformAll scales every row on up to p workers, preserving row order
// and first-error semantics.
func transformAll(s preprocess.Scaler, rows [][]float64, p int) ([][]float64, error) {
	out := make([][]float64, len(rows))
	err := forEachFirstErr(p, len(rows), func(i int) error {
		v, err := s.Transform(rows[i])
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Score returns the anomaly score of a record (higher = more anomalous).
func (p *Pipeline) Score(rec *Record) (float64, error) {
	x, err := p.Encode(rec)
	if err != nil {
		return 0, err
	}
	return p.detector.Score(x), nil
}

// FeatureContribution explains one feature's share of a verdict: how far
// the record sits from its matched prototype along that feature.
type FeatureContribution struct {
	// Feature is the encoded dimension name (e.g. "serror_rate",
	// "flag=S0").
	Feature string
	// Value is the record's scaled feature value.
	Value float64
	// Prototype is the matched unit's value for the feature.
	Prototype float64
	// Delta is Value - Prototype.
	Delta float64
}

// Explain returns the top-k features separating the record from its
// matched prototype, most influential first — the "why was this flagged"
// view. Returns nil if the record cannot be encoded.
func (p *Pipeline) Explain(rec *Record, k int) ([]FeatureContribution, error) {
	x, err := p.Encode(rec)
	if err != nil {
		return nil, err
	}
	contribs := p.detector.Explain(x, k)
	if contribs == nil {
		return nil, nil
	}
	names := p.encoder.FeatureNames()
	out := make([]FeatureContribution, 0, len(contribs))
	for _, c := range contribs {
		if c.Dim < 0 || c.Dim >= len(names) {
			continue
		}
		out = append(out, FeatureContribution{
			Feature:   names[c.Dim],
			Value:     x[c.Dim],
			Prototype: x[c.Dim] - c.Delta,
			Delta:     c.Delta,
		})
	}
	return out, nil
}

// Model returns the trained GHSOM for structural inspection.
func (p *Pipeline) Model() *Model { return p.model }

// Detector returns the fitted anomaly detector.
func (p *Pipeline) Detector() *anomaly.Detector { return p.detector }

// Config returns the pipeline's training configuration.
func (p *Pipeline) Config() PipelineConfig { return p.cfg }

// SetParallelism adjusts the worker bound used by the pipeline's batch
// inference (DetectAll and the detector's ClassifyAll) on an already
// trained or loaded pipeline: 0 means GOMAXPROCS, 1 forces serial
// execution. Predictions are identical at every setting.
func (p *Pipeline) SetParallelism(par int) {
	p.cfg.Parallelism = par
	p.detector.SetParallelism(par)
}

// Stream wraps the pipeline's detector for online use with the given
// rolling-window alarm configuration.
func (p *Pipeline) Stream(cfg anomaly.StreamConfig) (*anomaly.Stream, error) {
	return anomaly.NewStream(p.detector, cfg)
}
