// Command experiments reproduces every table and figure of the
// evaluation (see DESIGN.md for the experiment index): T1 dataset
// composition, T2 detector comparison, T3 per-category detection, T4
// tau sweep, F1/F3 convergence and growth traces, F2 ROC curves, F4
// scalability, and the ablations A1 (unseen-attack novelty), A2
// (online vs batch), A3 (routing policy), A4 (novelty margin).
//
// Usage:
//
//	experiments                 # full suite on the kdd99 scenario
//	experiments -quick          # small scenario, reduced sweep
//	experiments -only t2,f2     # subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ghsom/internal/anomaly"
	"ghsom/internal/eval"
	"ghsom/internal/trafficgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use the small scenario and a reduced tau sweep")
	scenario := fs.String("scenario", "", "dataset scenario: small, kdd99, or hard (overrides -quick)")
	seed := fs.Int64("seed", 1, "experiment seed")
	only := fs.String("only", "", "comma-separated experiment ids to run (t1,t2,t3,t4,f1,f2,f4,a1,a2,a3,a4)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := func(id string) bool {
		if *only == "" {
			return true
		}
		for _, w := range strings.Split(*only, ",") {
			if strings.EqualFold(strings.TrimSpace(w), id) {
				return true
			}
		}
		return false
	}

	gen := trafficgen.KDD99Like(*seed)
	if *quick {
		gen = trafficgen.Small(*seed)
	}
	switch *scenario {
	case "":
	case "small":
		gen = trafficgen.Small(*seed)
	case "kdd99":
		gen = trafficgen.KDD99Like(*seed)
	case "hard":
		gen = trafficgen.HardMix(*seed)
	default:
		return fmt.Errorf("unknown scenario %q (want small, kdd99, or hard)", *scenario)
	}

	banner("dataset")
	start := time.Now()
	ds, err := eval.MakeDataset(gen, 0.67, *seed)
	if err != nil {
		return err
	}
	enc, err := eval.Encode(ds)
	if err != nil {
		return err
	}
	fmt.Printf("train=%d test=%d dim=%d (generated+encoded in %.1fs)\n",
		len(enc.TrainX), len(enc.TestX), enc.Encoder.Dim(), time.Since(start).Seconds())

	if want("t1") {
		banner("T1: dataset composition")
		fmt.Print(eval.FormatComposition(eval.Composition(ds)))
	}

	if want("t2") {
		banner("T2: GHSOM vs flat SOM vs k-means vs volume threshold")
		results, err := eval.Comparison(enc, *seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatComparison(results))
	}

	if want("t3") {
		banner("T3: per-category detection (GHSOM)")
		_, _, det, err := eval.RunGHSOM(enc, eval.DefaultModelConfig(*seed), anomaly.Config{})
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatPerClass(eval.PerClass(enc, det)))
	}

	if want("t4") {
		banner("T4: structure and quality vs (tau1, tau2)")
		tau1s := []float64{0.3, 0.5, 0.7}
		tau2s := []float64{0.01, 0.03, 0.1}
		if *quick {
			tau1s = []float64{0.4, 0.7}
			tau2s = []float64{0.02, 0.1}
		}
		rows, err := eval.TauSweep(enc, tau1s, tau2s, *seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatTauSweep(rows))
	}

	if want("f1") || want("f3") {
		banner("F1+F3: root-map convergence and growth")
		trace, model, err := eval.ConvergenceTrace(enc, *seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatTrace(trace, model.Root().ID))
		fmt.Println("\nfinal hierarchy:")
		fmt.Print(model.TreeString())
	}

	if want("f2") {
		banner("F2: ROC curves (GHSOM vs budget-matched flat SOM)")
		curves, err := eval.ROCCurves(enc, *seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatROC(curves))
	}

	if want("f4") {
		banner("F4: scalability")
		sizes := []int{5000, 10000, 20000, 40000}
		if *quick {
			sizes = []int{1000, 2000, 4000}
		}
		rows, err := eval.Scalability(enc, sizes, *seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatScalability(rows))
	}

	if want("a1") {
		banner("A1: novelty path on unseen attacks (held out of training)")
		res, err := eval.NoveltyHoldout(*seed+100, *seed, "smurf", "satan", "warezclient")
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatHoldout(res))

		banner("A1b: corrected test set (test-set-only attacks: mailbomb, apache2, mscan, ...)")
		res2, err := eval.NoveltyCorrectedTestSet(*seed+200, *seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatHoldout(res2))
	}

	if want("a2") {
		banner("A2: online vs batch GHSOM training")
		results, err := eval.BatchVsOnline(enc, *seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatComparison(results))
	}

	if want("a3") {
		banner("A3: effective-codebook routing vs all-units routing")
		results, err := eval.RoutingAblation(enc, *seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatComparison(results))
	}

	if want("a4") {
		banner("A4: novelty-margin sensitivity")
		rows, err := eval.MarginSweep(enc, []float64{1.0, 1.25, 1.5, 2.0, 3.0}, *seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.FormatMarginSweep(rows))
	}

	return nil
}

func banner(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
