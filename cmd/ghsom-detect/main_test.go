package main

import (
	"os"
	"path/filepath"
	"testing"

	"ghsom"
	"ghsom/internal/kdd"
	"ghsom/internal/trafficgen"
)

// fixture builds a trained model file and an independent test CSV.
func fixture(t *testing.T) (modelPath, testCSV string) {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration test; skipped with -short")
	}
	dir := t.TempDir()

	trainRecs, err := trafficgen.Generate(trafficgen.Small(61))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ghsom.DefaultPipelineConfig()
	cfg.Model.EpochsPerGrowth = 3
	cfg.Model.FineTuneEpochs = 3
	cfg.Model.MaxGrowIters = 4
	cfg.Model.MaxDepth = 2
	pipe, err := ghsom.TrainPipeline(trainRecs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	testRecs, err := trafficgen.Generate(trafficgen.Small(62))
	if err != nil {
		t.Fatal(err)
	}
	testCSV = filepath.Join(dir, "test.csv")
	tf, err := os.Create(testCSV)
	if err != nil {
		t.Fatal(err)
	}
	if err := kdd.WriteAll(tf, testRecs[:2000]); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	return modelPath, testCSV
}

func TestRunDetect(t *testing.T) {
	model, testCSV := fixture(t)
	if err := run([]string{"-model", model, "-in", testCSV}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDetectWithVerdicts(t *testing.T) {
	model, testCSV := fixture(t)
	verdicts := filepath.Join(t.TempDir(), "verdicts.csv")
	if err := run([]string{"-model", model, "-in", testCSV, "-verdicts", verdicts}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(verdicts)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("verdicts file empty")
	}
}

func TestRunDetectErrors(t *testing.T) {
	model, _ := fixture(t)
	if err := run([]string{"-model", model}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-model", "/nonexistent.json", "-in", "/nonexistent.csv"}); err == nil {
		t.Error("missing model accepted")
	}
}
