package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ghsom"
	"ghsom/internal/kdd"
	"ghsom/internal/trafficgen"
)

// fixture builds a trained model file and an independent test CSV.
func fixture(t *testing.T) (modelPath, testCSV string) {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration test; skipped with -short")
	}
	dir := t.TempDir()

	trainRecs, err := trafficgen.Generate(trafficgen.Small(61))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ghsom.DefaultPipelineConfig()
	cfg.Model.EpochsPerGrowth = 3
	cfg.Model.FineTuneEpochs = 3
	cfg.Model.MaxGrowIters = 4
	cfg.Model.MaxDepth = 2
	pipe, err := ghsom.TrainPipeline(trainRecs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	testRecs, err := trafficgen.Generate(trafficgen.Small(62))
	if err != nil {
		t.Fatal(err)
	}
	testCSV = filepath.Join(dir, "test.csv")
	tf, err := os.Create(testCSV)
	if err != nil {
		t.Fatal(err)
	}
	if err := kdd.WriteAll(tf, testRecs[:2000]); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	return modelPath, testCSV
}

func TestRunDetect(t *testing.T) {
	model, testCSV := fixture(t)
	if err := run([]string{"-model", model, "-in", testCSV}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDetectWithVerdicts(t *testing.T) {
	model, testCSV := fixture(t)
	verdicts := filepath.Join(t.TempDir(), "verdicts.csv")
	if err := run([]string{"-model", model, "-in", testCSV, "-verdicts", verdicts}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(verdicts)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("verdicts file empty")
	}
}

func TestRunDetectErrors(t *testing.T) {
	model, _ := fixture(t)
	if err := run([]string{"-model", model}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-model", "/nonexistent.json", "-in", "/nonexistent.csv"}); err == nil {
		t.Error("missing model accepted")
	}
}

// TestRunDetectFormats feeds the same trace through the NDJSON record
// path and the columnar dataplane (heap and mmap loads) and requires
// byte-identical verdict files from all three runs. CSV is excluded
// from the identity check only because the kddcup format rounds rate
// fields; NDJSON and columnar are lossless.
func TestRunDetectFormats(t *testing.T) {
	model, _ := fixture(t)
	dir := t.TempDir()

	testRecs, err := trafficgen.Generate(trafficgen.Small(63))
	if err != nil {
		t.Fatal(err)
	}
	testRecs = testRecs[:2000]

	ndjsonPath := filepath.Join(dir, "trace.ndjson")
	nf, err := os.Create(ndjsonPath)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(nf)
	for i := range testRecs {
		if err := enc.Encode(&testRecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	nf.Close()

	columnarPath := filepath.Join(dir, "trace.gwb")
	cf, err := os.Create(columnarPath)
	if err != nil {
		t.Fatal(err)
	}
	opts := kdd.ColumnarWriteOptions{Labels: true}
	for lo := 0; lo < len(testRecs); lo += 700 {
		hi := min(lo+700, len(testRecs))
		if err := kdd.WriteColumnarBatch(cf, testRecs[lo:hi], opts); err != nil {
			t.Fatal(err)
		}
	}
	cf.Close()

	verdictsFor := func(name string, args ...string) []byte {
		t.Helper()
		path := filepath.Join(dir, name+".csv")
		args = append(args, "-model", model, "-verdicts", path)
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s: empty verdicts", name)
		}
		return data
	}

	want := verdictsFor("ndjson", "-in", ndjsonPath)
	if got := verdictsFor("columnar", "-in", columnarPath); !bytes.Equal(got, want) {
		t.Error("columnar verdicts differ from ndjson verdicts")
	}
	if got := verdictsFor("columnar-mmap", "-in", columnarPath, "-mmap"); !bytes.Equal(got, want) {
		t.Error("mmap columnar verdicts differ from heap ndjson verdicts")
	}
	if got := verdictsFor("ndjson-mmap", "-in", ndjsonPath, "-mmap"); !bytes.Equal(got, want) {
		t.Error("mmap ndjson verdicts differ from heap verdicts")
	}
}

// TestRunDetectColumnarNoLabels covers unlabeled production traffic:
// detection succeeds and quality metrics are skipped.
func TestRunDetectColumnarNoLabels(t *testing.T) {
	model, _ := fixture(t)
	dir := t.TempDir()

	testRecs, err := trafficgen.Generate(trafficgen.Small(64))
	if err != nil {
		t.Fatal(err)
	}
	columnarPath := filepath.Join(dir, "trace.gwb")
	cf, err := os.Create(columnarPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := kdd.WriteColumnarBatch(cf, testRecs[:500], kdd.ColumnarWriteOptions{}); err != nil {
		t.Fatal(err)
	}
	cf.Close()

	verdicts := filepath.Join(dir, "verdicts.csv")
	if err := run([]string{"-model", model, "-in", columnarPath, "-verdicts", verdicts}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(verdicts)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) != 501 {
		t.Fatalf("verdicts has %d lines, want 501", len(lines))
	}
	for i, line := range lines[1:] {
		if !bytes.HasPrefix(line, []byte(strconv.Itoa(i)+",,")) {
			t.Fatalf("line %d truth column not empty: %q", i, line)
		}
	}
}

// TestRunDetectTruncatedColumnar checks a torn frame surfaces as an
// error instead of a silent partial result.
func TestRunDetectTruncatedColumnar(t *testing.T) {
	model, _ := fixture(t)
	dir := t.TempDir()

	testRecs, err := trafficgen.Generate(trafficgen.Small(65))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := kdd.WriteColumnarBatch(&buf, testRecs[:300], kdd.ColumnarWriteOptions{Labels: true}); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.gwb")
	if err := os.WriteFile(torn, buf.Bytes()[:buf.Len()-37], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", model, "-in", torn}); err == nil {
		t.Error("truncated columnar input accepted")
	}
}
