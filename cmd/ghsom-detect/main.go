// Command ghsom-detect runs a trained pipeline over a
// kddcup.data-format CSV and reports detection quality (when the CSV has
// ground-truth labels) plus optional per-record verdicts.
//
// Usage:
//
//	ghsom-detect -model model.bin -in test.csv
//	ghsom-detect -model model.bin -in test.csv -verdicts verdicts.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"ghsom"
	"ghsom/internal/kdd"
	"ghsom/internal/metrics"
	"ghsom/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ghsom-detect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ghsom-detect", flag.ContinueOnError)
	modelPath := fs.String("model", "model.bin", "trained pipeline file")
	in := fs.String("in", "", "input CSV in kddcup.data format (required)")
	verdicts := fs.String("verdicts", "", "optional per-record verdict CSV output")
	par := fs.Int("parallelism", 0, "classification worker bound (0 = GOMAXPROCS, 1 = serial; results identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	pipe, err := ghsom.LoadPipeline(mf)
	mf.Close()
	if err != nil {
		return err
	}

	rf, err := os.Open(*in)
	if err != nil {
		return err
	}
	records, err := kdd.ReadAll(rf)
	rf.Close()
	if err != nil {
		return err
	}

	pipe.SetParallelism(*par)
	preds, err := pipe.DetectAll(records)
	if err != nil {
		return err
	}

	var vw *csv.Writer
	if *verdicts != "" {
		vf, err := os.Create(*verdicts)
		if err != nil {
			return err
		}
		defer vf.Close()
		vw = csv.NewWriter(vf)
		defer vw.Flush()
		if err := vw.Write([]string{"index", "truth", "predicted", "attack", "novel", "score"}); err != nil {
			return err
		}
	}

	var outcome metrics.BinaryOutcome
	conf := metrics.NewConfusion("normal", "dos", "probe", "r2l", "u2r")
	for i := range records {
		truthAttack := records[i].IsAttack()
		outcome.AddBinary(truthAttack, preds[i].Attack)
		predCat := kdd.CategoryOf(preds[i].Label).String()
		if preds[i].Attack && predCat == "normal" {
			predCat = "unknown"
		}
		conf.Add(records[i].Category().String(), predCat)
		if vw != nil {
			err := vw.Write([]string{
				strconv.Itoa(i),
				records[i].Label,
				preds[i].Label,
				strconv.FormatBool(preds[i].Attack),
				strconv.FormatBool(preds[i].Novel),
				strconv.FormatFloat(preds[i].Score, 'f', 4, 64),
			})
			if err != nil {
				return err
			}
		}
	}

	fmt.Printf("records: %d\n", len(records))
	fmt.Printf("binary:  %s\n\n", outcome)
	fmt.Println("category confusion (truth rows, predicted columns):")
	fmt.Print(conf.String())
	rows := make([][]string, 0, 5)
	for _, cat := range kdd.Categories() {
		rows = append(rows, []string{cat.String(), viz.Pct(conf.Recall(cat.String()))})
	}
	fmt.Println()
	fmt.Print(viz.Table([]string{"category", "recall"}, rows))
	return nil
}
