// Command ghsom-detect runs a trained pipeline over a traffic trace and
// reports detection quality (when the trace has ground-truth labels)
// plus optional per-record verdicts. The input format is sniffed:
// kddcup.data CSV, NDJSON records, or the columnar batch wire format
// (GHSOMWB1 frames, e.g. from trafficgen -format columnar) — columnar
// input runs on the zero-copy ingestion dataplane.
//
// Usage:
//
//	ghsom-detect -model model.bin -in test.csv
//	ghsom-detect -model model.bin -in trace.gwb -mmap
//	ghsom-detect -model model.bin -in test.csv -verdicts verdicts.csv
package main

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"ghsom"
	"ghsom/internal/kdd"
	"ghsom/internal/metrics"
	"ghsom/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ghsom-detect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ghsom-detect", flag.ContinueOnError)
	modelPath := fs.String("model", "model.bin", "trained pipeline file")
	in := fs.String("in", "", "input trace: CSV, NDJSON, or columnar frames (required; format sniffed)")
	verdicts := fs.String("verdicts", "", "optional per-record verdict CSV output")
	par := fs.Int("parallelism", 0, "classification worker bound (0 = GOMAXPROCS, 1 = serial; results identical)")
	useMmap := fs.Bool("mmap", false, "mmap the model file instead of heap-loading it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	pipe, err := ghsom.LoadPipelineFile(*modelPath, *useMmap)
	if err != nil {
		return err
	}
	defer pipe.Close()
	pipe.SetParallelism(*par)

	rf, err := os.Open(*in)
	if err != nil {
		return err
	}
	truth, preds, err := detectInput(pipe, rf)
	rf.Close()
	if err != nil {
		return err
	}

	var vw *csv.Writer
	if *verdicts != "" {
		vf, err := os.Create(*verdicts)
		if err != nil {
			return err
		}
		defer vf.Close()
		vw = csv.NewWriter(vf)
		defer vw.Flush()
		if err := vw.Write([]string{"index", "truth", "predicted", "attack", "novel", "score"}); err != nil {
			return err
		}
	}

	hasTruth := false
	var outcome metrics.BinaryOutcome
	conf := metrics.NewConfusion("normal", "dos", "probe", "r2l", "u2r")
	for i := range preds {
		if truth[i] != "" {
			hasTruth = true
			truthCat := kdd.CategoryOf(truth[i])
			outcome.AddBinary(truthCat != kdd.Normal && truthCat != kdd.Unknown, preds[i].Attack)
			predCat := kdd.CategoryOf(preds[i].Label).String()
			if preds[i].Attack && predCat == "normal" {
				predCat = "unknown"
			}
			conf.Add(truthCat.String(), predCat)
		}
		if vw != nil {
			err := vw.Write([]string{
				strconv.Itoa(i),
				truth[i],
				preds[i].Label,
				strconv.FormatBool(preds[i].Attack),
				strconv.FormatBool(preds[i].Novel),
				strconv.FormatFloat(preds[i].Score, 'f', 4, 64),
			})
			if err != nil {
				return err
			}
		}
	}

	fmt.Printf("records: %d\n", len(preds))
	if !hasTruth {
		fmt.Println("no ground-truth labels in input; quality metrics skipped")
		return nil
	}
	fmt.Printf("binary:  %s\n\n", outcome)
	fmt.Println("category confusion (truth rows, predicted columns):")
	fmt.Print(conf.String())
	rows := make([][]string, 0, 5)
	for _, cat := range kdd.Categories() {
		rows = append(rows, []string{cat.String(), viz.Pct(conf.Recall(cat.String()))})
	}
	fmt.Println()
	fmt.Print(viz.Table([]string{"category", "recall"}, rows))
	return nil
}

// detectInput sniffs the trace format from its first bytes and runs the
// matching dataplane: columnar frames go straight through DetectColumnar
// (no Record materialization), CSV and NDJSON records through
// DetectAll. Returns the per-record ground-truth labels ("" when the
// input carries none) and predictions, positionally aligned.
func detectInput(pipe *ghsom.Pipeline, r io.Reader) (truth []string, preds []ghsom.Prediction, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(8)
	if bytes.Equal(head, []byte("GHSOMWB1")) {
		var cb ghsom.ColumnarBatch
		var frame []ghsom.Prediction
		for {
			err := ghsom.ReadColumnarBatch(br, &cb, ghsom.DefaultColumnarLimits())
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, nil, err
			}
			frame, err = pipe.DetectColumnar(&cb, frame)
			if err != nil {
				return nil, nil, fmt.Errorf("frame starting at record %d: %w", len(preds), err)
			}
			preds = append(preds, frame...)
			if cb.HasLabels() {
				truth = cb.AppendLabels(truth)
			} else {
				for i := 0; i < cb.Rows(); i++ {
					truth = append(truth, "")
				}
			}
		}
		return truth, preds, nil
	}
	var records []kdd.Record
	if len(head) > 0 && head[0] == '{' {
		records, err = kdd.ReadRecordsNDJSON(br, nil, 0)
	} else {
		records, err = kdd.ReadAll(br)
	}
	if err != nil {
		return nil, nil, err
	}
	preds, err = pipe.DetectAll(records)
	if err != nil {
		return nil, nil, err
	}
	return kdd.Labels(records), preds, nil
}
