package main

import (
	"os"
	"path/filepath"
	"testing"

	"ghsom"
	"ghsom/internal/kdd"
	"ghsom/internal/trafficgen"
)

// writeTrace generates a small labeled trace CSV for CLI tests.
func writeTrace(t *testing.T, seed int64) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration test; skipped with -short")
	}
	records, err := trafficgen.Generate(trafficgen.Small(seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := kdd.WriteAll(f, records); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTrainsAndSaves(t *testing.T) {
	in := writeTrace(t, 51)
	model := filepath.Join(t.TempDir(), "model.json")
	err := run([]string{"-in", in, "-model", model, "-quiet",
		"-tau1", "0.7", "-tau2", "0.1", "-max-depth", "2"})
	if err != nil {
		t.Fatal(err)
	}
	mf, err := os.Open(model)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	pipe, err := ghsom.LoadPipeline(mf)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Model().Config().Tau1 != 0.7 {
		t.Errorf("tau1 = %v", pipe.Model().Config().Tau1)
	}
	if pipe.Model().Stats().MaxDepth > 2 {
		t.Errorf("depth = %d", pipe.Model().Stats().MaxDepth)
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -in accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent/x.csv"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}); err == nil {
		t.Error("empty file accepted")
	}
}
