// Command ghsom-gateway is the fault-tolerant coordinator in front of a
// fleet of ghsom-serve replicas (internal/cluster). It exposes the same
// HTTP surface as one replica — POST /detect (NDJSON or columnar),
// POST/DELETE /model, GET /models, /stats, /healthz, /livez — and routes
// each request to healthy fleet members:
//
//   - Models shard over the fleet by consistent hashing with -replication
//     copies; /detect for a model only ever goes to its shard.
//   - An active health checker (-health-every) consumes each replica's
//     /healthz and /livez, so draining or dead replicas stop receiving
//     traffic within one probe period.
//   - Failed or shed requests retry on another shard member with
//     exponential backoff and jitter, honoring the replica's Retry-After
//     hint as a floor and never retrying past the request's deadline
//     budget (X-GHSOM-Deadline-Ms, re-encoded per hop with the time that
//     is actually left).
//   - A per-replica circuit breaker (-breaker-threshold consecutive
//     failures, -breaker-cooldown) sheds a misbehaving replica fast and
//     re-admits it via half-open probe requests.
//   - With -hedge, a slow first attempt is raced against a second shard
//     member; detects are idempotent, so the first whole response wins.
//   - Degradation is per shard: a model whose replicas are all down sheds
//     with 503 + Retry-After while every other shard keeps serving.
//
// POST /model fans the envelope out to every replica and verifies each
// one lists the model afterward; GET /stats is a cluster rollup
// (gateway routing counters, per-replica health/breaker state, and the
// fleet's aggregated detection counters).
//
// Usage:
//
//	ghsom-gateway -replicas http://10.0.0.1:8741,http://10.0.0.2:8741,http://10.0.0.3:8741
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ghsom/internal/cluster"
	"ghsom/internal/faultinject"
	"ghsom/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ghsom-gateway:", err)
		os.Exit(1)
	}
}

// defaultInstance derives the gateway identity when -instance is not
// given: hostname:port of the listen address.
func defaultInstance(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		port = addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		if h, err := os.Hostname(); err == nil {
			host = h
		} else {
			host = "localhost"
		}
	}
	return net.JoinHostPort(host, port)
}

// parseReplicas splits the -replicas list, trimming blanks.
func parseReplicas(list string) []string {
	var out []string
	for _, u := range strings.Split(list, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("ghsom-gateway", flag.ContinueOnError)
	replicaList := fs.String("replicas", "", "comma-separated base URLs of the ghsom-serve fleet (required)")
	addr := fs.String("addr", ":8740", "HTTP listen address")
	instance := fs.String("instance", "", "gateway identity surfaced in X-GHSOM-Instance (default hostname:port)")
	replication := fs.Int("replication", 2, "replicas per model shard")
	retries := fs.Int("retries", 3, "retry budget per request beyond the first attempt")
	retryBase := fs.Duration("retry-base", 25*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
	retryMax := fs.Duration("retry-max", 2*time.Second, "retry backoff cap")
	hedge := fs.Duration("hedge", 0, "hedge delay: race a second replica if the first has not answered in this long (0 = off)")
	healthEvery := fs.Duration("health-every", time.Second, "active health-check period")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "health probe timeout")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive failures that open a replica's circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before half-open probes")
	defaultTimeout := fs.Duration("default-timeout", serve.DefaultJobTimeout, "deadline given to requests that carry none (0 = no deadline)")
	maxBody := fs.Int64("max-body", serve.DefaultMaxBodyBytes, "cap on one /detect request body in bytes")
	maxModel := fs.Int64("max-model", serve.DefaultMaxModelBytes, "cap on one POST /model envelope in bytes")
	readHeaderTimeout := fs.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	faults := fs.String("faults", "", "arm fault-injection points, e.g. 'dial-error=error:3' (see internal/faultinject)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	replicas := parseReplicas(*replicaList)
	if len(replicas) == 0 {
		return errors.New("-replicas is required (comma-separated ghsom-serve base URLs)")
	}
	if *replication < 1 {
		return fmt.Errorf("-replication must be >= 1, got %d", *replication)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", *retries)
	}
	if set, err := faultinject.ArmFromEnv(); err != nil {
		return err
	} else if set {
		fmt.Fprintf(stderr, "ghsom-gateway: fault injection armed from %s\n", faultinject.EnvVar)
	}
	if *faults != "" {
		if err := faultinject.Arm(*faults); err != nil {
			return err
		}
		fmt.Fprintln(stderr, "ghsom-gateway: fault injection armed from -faults")
	}
	if *instance == "" {
		*instance = defaultInstance(*addr)
	}

	gw, err := cluster.New(cluster.Config{
		Replicas:         replicas,
		Instance:         *instance,
		Replication:      *replication,
		MaxRetries:       *retries,
		RetryBase:        *retryBase,
		RetryMax:         *retryMax,
		Hedge:            *hedge,
		HealthEvery:      *healthEvery,
		ProbeTimeout:     *probeTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		DefaultTimeout:   *defaultTimeout,
		MaxBody:          *maxBody,
		MaxModel:         *maxModel,
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
	}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	fmt.Fprintf(stderr, "ghsom-gateway: instance %s listening on %s, fronting %d replicas (replication %d)\n",
		*instance, *addr, len(replicas), *replication)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(stderr, "ghsom-gateway: %v, shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
