package main

import (
	"io"
	"os"
	"reflect"
	"testing"
)

func TestParseReplicas(t *testing.T) {
	got := parseReplicas(" http://a:1 , ,http://b:2,")
	want := []string{"http://a:1", "http://b:2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseReplicas = %v, want %v", got, want)
	}
	if parseReplicas("") != nil {
		t.Error("empty list should parse to nil")
	}
}

func TestDefaultInstance(t *testing.T) {
	host, err := os.Hostname()
	if err != nil {
		t.Skip("no hostname")
	}
	if got := defaultInstance(":8740"); got != host+":8740" {
		t.Errorf("defaultInstance(\":8740\") = %q, want %q", got, host+":8740")
	}
	if got := defaultInstance("10.0.0.9:8740"); got != "10.0.0.9:8740" {
		t.Errorf("defaultInstance passthrough = %q", got)
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Error("run without -replicas succeeded")
	}
	if err := run([]string{"-replicas", "http://a:1", "-replication", "0"}, io.Discard); err == nil {
		t.Error("zero -replication accepted")
	}
	if err := run([]string{"-replicas", "http://a:1", "-retries", "-1"}, io.Discard); err == nil {
		t.Error("negative -retries accepted")
	}
	if err := run([]string{"-replicas", "http://a:1", "-faults", "no-such-point=error"}, io.Discard); err == nil {
		t.Error("bad -faults spec accepted")
	}
}
