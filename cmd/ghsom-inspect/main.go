// Command ghsom-inspect prints the structure of a trained pipeline: the
// hierarchy tree, per-depth statistics, the root map's U-matrix and unit
// labels, and the detector's label distribution.
//
// Usage:
//
//	ghsom-inspect -model model.json
//	ghsom-inspect -model model.json -node 3    # U-matrix of one node
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ghsom"
	"ghsom/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ghsom-inspect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ghsom-inspect", flag.ContinueOnError)
	modelPath := fs.String("model", "model.json", "trained pipeline file")
	nodeID := fs.Int("node", 0, "node whose U-matrix to render")
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	pipe, err := ghsom.LoadPipeline(f)
	f.Close()
	if err != nil {
		return err
	}
	model := pipe.Model()
	st := model.Stats()

	fmt.Printf("model: %s\n", st)
	fmt.Printf("tau1=%.3f tau2=%.3f maxDepth=%d seed=%d\n\n",
		model.Config().Tau1, model.Config().Tau2, model.Config().MaxDepth, model.Config().Seed)

	fmt.Println("per-depth structure:")
	rows := make([][]string, 0, len(st.MapsPerDepth))
	for d := range st.MapsPerDepth {
		rows = append(rows, []string{
			fmt.Sprint(d + 1),
			fmt.Sprint(st.MapsPerDepth[d]),
			fmt.Sprint(st.UnitsPerDepth[d]),
		})
	}
	fmt.Print(viz.Table([]string{"depth", "maps", "units"}, rows))

	fmt.Println("\nhierarchy:")
	fmt.Print(model.TreeString())

	node := model.Node(*nodeID)
	if node == nil {
		return fmt.Errorf("node %d does not exist (model has %d nodes)", *nodeID, len(model.Nodes()))
	}
	fmt.Printf("\nnode %d (%dx%d, depth %d) U-matrix:\n", node.ID, node.Map.Rows(), node.Map.Cols(), node.Depth)
	fmt.Print(viz.Heatmap(node.Map.UMatrix()))

	fmt.Println("\ndetector cells per predicted label:")
	dist := pipe.Detector().LabelDistribution()
	labels := make([]string, 0, len(dist))
	for l := range dist {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return dist[labels[i]] > dist[labels[j]] })
	lrows := make([][]string, 0, len(labels))
	for _, l := range labels {
		lrows = append(lrows, []string{l, fmt.Sprint(dist[l])})
	}
	fmt.Print(viz.Table([]string{"label", "cells"}, lrows))
	return nil
}
