// Command ghsom-inspect prints the structure of a trained pipeline: the
// hierarchy tree, per-depth statistics, the root map's U-matrix and unit
// labels, and the detector's label distribution.
//
// Usage:
//
//	ghsom-inspect -model model.bin
//	ghsom-inspect -model model.bin -node 3    # U-matrix of one node
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ghsom"
	"ghsom/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ghsom-inspect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ghsom-inspect", flag.ContinueOnError)
	modelPath := fs.String("model", "model.bin", "trained pipeline file")
	nodeID := fs.Int("node", 0, "node whose U-matrix to render")
	useMmap := fs.Bool("mmap", false, "mmap the model file instead of heap-loading it")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pipe, err := ghsom.LoadPipelineFile(*modelPath, *useMmap)
	if err != nil {
		return err
	}
	defer pipe.Close()
	model := pipe.Model()
	st := model.Stats()
	compiled := pipe.Compiled()
	cst := compiled.Stats()

	fmt.Printf("model: %s\n", st)
	fmt.Printf("tau1=%.3f tau2=%.3f maxDepth=%d seed=%d\n",
		model.Config().Tau1, model.Config().Tau2, model.Config().MaxDepth, model.Config().Seed)
	format := "binary"
	if pipe.EnvelopeVersion() < 3 {
		format = "json, compiled on load"
	}
	fmt.Printf("envelope: v%d (%s)\n", pipe.EnvelopeVersion(), format)
	residency := "heap"
	if pipe.MappedBytes() > 0 {
		residency = fmt.Sprintf("mmap, %s page-cache shared", humanBytes(pipe.MappedBytes()))
	}
	fmt.Printf("compiled: nodes=%d units=%d leaf-units=%d arena=%s tables=%s norm-cache=%s residency=%s\n",
		cst.Maps, cst.Units, cst.LeafUnits,
		humanBytes(compiled.ArenaBytes()), humanBytes(compiled.TableBytes()),
		humanBytes(compiled.NormBytes()), residency)
	fmt.Printf("bmu: precision=%s quant-arena=%s\n\n",
		compiled.BMUPrecision(), humanBytes(compiled.QuantBytes()))

	fmt.Println("per-depth structure (tree | compiled):")
	rows := make([][]string, 0, len(st.MapsPerDepth))
	for d := range st.MapsPerDepth {
		cMaps, cUnits := 0, 0
		if d < len(cst.MapsPerDepth) {
			cMaps, cUnits = cst.MapsPerDepth[d], cst.UnitsPerDepth[d]
		}
		rows = append(rows, []string{
			fmt.Sprint(d + 1),
			fmt.Sprint(st.MapsPerDepth[d]),
			fmt.Sprint(st.UnitsPerDepth[d]),
			fmt.Sprint(cMaps),
			fmt.Sprint(cUnits),
		})
	}
	fmt.Print(viz.Table([]string{"depth", "maps", "units", "c-maps", "c-units"}, rows))

	fmt.Println("\nBMU engine GEMM blocks per level (units×dim per node):")
	brows := make([][]string, 0, 4)
	for _, b := range compiled.BlockShapes() {
		shape := fmt.Sprintf("%d×%d", b.MinUnits, b.Dim)
		if b.MaxUnits != b.MinUnits {
			shape = fmt.Sprintf("%d–%d×%d", b.MinUnits, b.MaxUnits, b.Dim)
		}
		brows = append(brows, []string{
			fmt.Sprint(b.Depth),
			fmt.Sprint(b.Nodes),
			shape,
			humanBytes(b.WeightBytes),
		})
	}
	fmt.Print(viz.Table([]string{"depth", "nodes", "block", "weights"}, brows))

	fmt.Println("\nhierarchy:")
	fmt.Print(model.TreeString())

	node := model.Node(*nodeID)
	if node == nil {
		return fmt.Errorf("node %d does not exist (model has %d nodes)", *nodeID, len(model.Nodes()))
	}
	fmt.Printf("\nnode %d (%dx%d, depth %d) U-matrix:\n", node.ID, node.Map.Rows(), node.Map.Cols(), node.Depth)
	fmt.Print(viz.Heatmap(node.Map.UMatrix()))

	fmt.Println("\ndetector cells per predicted label:")
	dist := pipe.Detector().LabelDistribution()
	labels := make([]string, 0, len(dist))
	for l := range dist {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return dist[labels[i]] > dist[labels[j]] })
	lrows := make([][]string, 0, len(labels))
	for _, l := range labels {
		lrows = append(lrows, []string{l, fmt.Sprint(dist[l])})
	}
	fmt.Print(viz.Table([]string{"label", "cells"}, lrows))
	return nil
}

// humanBytes renders a byte count with a binary unit prefix.
func humanBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
