package main

import (
	"os"
	"path/filepath"
	"testing"

	"ghsom"
	"ghsom/internal/trafficgen"
)

func trainedModelFile(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration test; skipped with -short")
	}
	records, err := trafficgen.Generate(trafficgen.Small(71))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ghsom.DefaultPipelineConfig()
	cfg.Model.EpochsPerGrowth = 3
	cfg.Model.FineTuneEpochs = 3
	cfg.Model.MaxGrowIters = 4
	cfg.Model.MaxDepth = 2
	pipe, err := ghsom.TrainPipeline(records, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pipe.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunInspect(t *testing.T) {
	model := trainedModelFile(t)
	if err := run([]string{"-model", model}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInspectBadNode(t *testing.T) {
	model := trainedModelFile(t)
	if err := run([]string{"-model", model, "-node", "99999"}); err == nil {
		t.Error("nonexistent node accepted")
	}
}

func TestRunInspectMissingModel(t *testing.T) {
	if err := run([]string{"-model", "/nonexistent.json"}); err == nil {
		t.Error("missing model accepted")
	}
}

func TestRunInspectMmap(t *testing.T) {
	model := trainedModelFile(t)
	if err := run([]string{"-model", model, "-mmap"}); err != nil {
		t.Fatal(err)
	}
}
