// Command benchjson measures inference throughput and allocation rates of
// the detection pipeline and writes them as a machine-readable JSON
// artifact, so CI can track the perf trajectory across commits.
//
// It trains a pipeline on the small synthetic scenario, then benchmarks
// DetectAll and DetectBatch at Parallelism 1 and GOMAXPROCS via
// testing.Benchmark, reporting records/sec and allocs/record for each
// point.
//
// Usage:
//
//	benchjson -out BENCH_inference.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ghsom"
	"ghsom/internal/trafficgen"
)

// point is one measured benchmark configuration.
type point struct {
	// Name identifies the measured code path (DetectAll, DetectBatch).
	Name string `json:"name"`
	// Parallelism is the worker bound (0 reported as GOMAXPROCS).
	Parallelism int `json:"parallelism"`
	// BatchRecords is the number of records per benchmark op.
	BatchRecords int `json:"batchRecords"`
	// Iterations is the benchmark op count.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per batch op.
	NsPerOp int64 `json:"nsPerOp"`
	// RecordsPerSec is classification throughput.
	RecordsPerSec float64 `json:"recordsPerSec"`
	// AllocsPerRecord is heap allocations per classified record.
	AllocsPerRecord float64 `json:"allocsPerRecord"`
	// BytesPerRecord is heap bytes per classified record.
	BytesPerRecord float64 `json:"bytesPerRecord"`
}

// artifact is the document written to -out.
type artifact struct {
	Schema     int       `json:"schema"`
	Generated  time.Time `json:"generated"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Records    int       `json:"records"`
	Points     []point   `json:"points"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "BENCH_inference.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	records, err := trafficgen.Generate(trafficgen.Small(1))
	if err != nil {
		return err
	}
	doc := artifact{
		Schema:     1,
		Generated:  time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Records:    len(records),
	}
	for _, par := range []int{1, 0} {
		cfg := ghsom.DefaultPipelineConfig()
		cfg.Parallelism = par
		cfg.Model.Parallelism = par
		cfg.Detector.Parallelism = par
		pipe, err := ghsom.TrainPipeline(records, cfg)
		if err != nil {
			return err
		}
		effective := par
		if effective == 0 {
			effective = runtime.GOMAXPROCS(0)
		}

		doc.Points = append(doc.Points,
			measure("DetectAll", effective, len(records), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pipe.DetectAll(records); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measure("DetectBatch", effective, len(records), func(b *testing.B) {
				out := make([]ghsom.Prediction, len(records))
				var err error
				if out, err = pipe.DetectBatch(records, out); err != nil {
					b.Fatal(err) // warm-up outside the timer
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pipe.DetectBatch(records, out); err != nil {
						b.Fatal(err)
					}
				}
			}),
		)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, p := range doc.Points {
		fmt.Printf("%-12s P=%-2d %12.0f records/sec %8.4f allocs/record\n",
			p.Name, p.Parallelism, p.RecordsPerSec, p.AllocsPerRecord)
	}
	return nil
}

// measure runs one benchmark point via testing.Benchmark (which scales
// b.N toward its default ~1s measuring window).
func measure(name string, par, nRecords int, fn func(b *testing.B)) point {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	recsPerOp := float64(nRecords)
	perOp := res.T.Seconds() / float64(res.N)
	return point{
		Name:            name,
		Parallelism:     par,
		BatchRecords:    nRecords,
		Iterations:      res.N,
		NsPerOp:         res.NsPerOp(),
		RecordsPerSec:   recsPerOp / perOp,
		AllocsPerRecord: float64(res.AllocsPerOp()) / recsPerOp,
		BytesPerRecord:  float64(res.AllocedBytesPerOp()) / recsPerOp,
	}
}
