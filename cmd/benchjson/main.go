// Command benchjson measures inference, training, and routing throughput
// of the detection pipeline and writes them as machine-readable JSON
// artifacts, so CI can track the perf trajectory across commits.
//
// It trains a pipeline on the small synthetic scenario, then benchmarks
// DetectAll and DetectBatch (inference), som-level TrainBatchView and
// end-to-end TrainPipeline (training), tree-walk vs compiled model
// routing (RouteTree / RouteCompiled), and the scalar vs blocked BMU
// search kernels (ArgMinScalar / ArgMinBatch across a dim×units sweep)
// across the -p parallelism sweep (default "1,0": serial and GOMAXPROCS)
// via testing.Benchmark.
//
// -scaling-out writes the multi-core scaling curve: records/sec and
// parallel efficiency for the four end-to-end dataplanes (TrainPipeline,
// RouteCompiled, DetectBatch, DetectColumnar) at every P in
// {1, 2, 4, ..., GOMAXPROCS}. On a single-CPU host the curve degenerates
// to the P=1 point; that is recorded, not an error.
//
// Usage:
//
//	benchjson -p 1,2,4,0 -out BENCH_inference.json \
//	          -train-out BENCH_training.json -routing-out BENCH_routing.json \
//	          -bmu-out BENCH_bmu.json -scaling-out BENCH_scaling.json
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"ghsom"
	"ghsom/internal/cluster"
	"ghsom/internal/core"
	"ghsom/internal/eval"
	"ghsom/internal/kdd"
	"ghsom/internal/parallel"
	"ghsom/internal/serve"
	"ghsom/internal/som"
	"ghsom/internal/trafficgen"
	"ghsom/internal/vecmath"
)

// point is one measured benchmark configuration.
type point struct {
	// Name identifies the measured code path (DetectAll, DetectBatch,
	// TrainBatch, TrainPipeline, ArgMinScalar, ArgMinBatch).
	Name string `json:"name"`
	// Parallelism is the worker bound (0 reported as GOMAXPROCS).
	Parallelism int `json:"parallelism"`
	// Dim is the vector dimension (BMU kernel points only).
	Dim int `json:"dim,omitempty"`
	// Units is the codebook row count (BMU kernel points only).
	Units int `json:"units,omitempty"`
	// BatchRecords is the number of records per benchmark op.
	BatchRecords int `json:"batchRecords"`
	// Epochs is the training epochs per op (training points only).
	Epochs int `json:"epochs,omitempty"`
	// Iterations is the benchmark op count.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per op.
	NsPerOp int64 `json:"nsPerOp"`
	// RecordsPerSec is per-record throughput (records classified or
	// trained per second of wall time).
	RecordsPerSec float64 `json:"recordsPerSec"`
	// RecordEpochsPerSec is records x epochs per second — the
	// training-kernel throughput measure (training points only).
	RecordEpochsPerSec float64 `json:"recordEpochsPerSec,omitempty"`
	// AllocsPerRecord is heap allocations per record.
	AllocsPerRecord float64 `json:"allocsPerRecord"`
	// AllocsPerEpoch is heap allocations per training epoch (training
	// points only).
	AllocsPerEpoch float64 `json:"allocsPerEpoch,omitempty"`
	// BytesPerRecord is heap bytes per record.
	BytesPerRecord float64 `json:"bytesPerRecord"`
	// Efficiency is the parallel efficiency rate(P)/(P·rate(1)) —
	// 1.0 is perfect linear scaling (scaling points only).
	Efficiency float64 `json:"efficiency,omitempty"`
	// Precision is the BMU candidate-generation rung (quant points only).
	Precision string `json:"precision,omitempty"`
	// QuantArenaBytes is the shadow-codebook footprint of the rung — the
	// f64 arena bytes for the f64 baseline (quant points only).
	QuantArenaBytes int `json:"quantArenaBytes,omitempty"`
}

// artifact is the document written for each benchmark family.
type artifact struct {
	Schema     int       `json:"schema"`
	Generated  time.Time `json:"generated"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Records    int       `json:"records"`
	Points     []point   `json:"points"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "BENCH_inference.json", "inference JSON path (empty = skip)")
	trainOut := fs.String("train-out", "BENCH_training.json", "training JSON path (empty = skip)")
	routingOut := fs.String("routing-out", "BENCH_routing.json", "routing JSON path (empty = skip)")
	bmuOut := fs.String("bmu-out", "BENCH_bmu.json", "BMU kernel JSON path (empty = skip)")
	ingestOut := fs.String("ingest-out", "BENCH_ingest.json", "ingestion dataplane JSON path (empty = skip)")
	quantOut := fs.String("quant-out", "BENCH_quant.json", "quantized BMU candidate-generation JSON path (empty = skip)")
	scalingOut := fs.String("scaling-out", "", "multi-core scaling curve JSON path (empty = skip)")
	clusterOut := fs.String("cluster-out", "", "distributed serving tier JSON path (empty = skip)")
	pList := fs.String("p", "1,0", "comma-separated parallelism sweep for all bench families (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sweep, err := parseParSweep(*pList)
	if err != nil {
		return err
	}
	parSweep = sweep

	records, err := trafficgen.Generate(trafficgen.Small(1))
	if err != nil {
		return err
	}
	if *out != "" {
		doc, err := inferencePoints(records)
		if err != nil {
			return err
		}
		if err := writeArtifact(*out, doc); err != nil {
			return err
		}
	}
	if *trainOut != "" {
		doc, err := trainingPoints(records)
		if err != nil {
			return err
		}
		if err := writeArtifact(*trainOut, doc); err != nil {
			return err
		}
	}
	if *routingOut != "" {
		doc, err := routingPoints(records)
		if err != nil {
			return err
		}
		if err := writeArtifact(*routingOut, doc); err != nil {
			return err
		}
	}
	if *bmuOut != "" {
		if err := writeArtifact(*bmuOut, bmuPoints()); err != nil {
			return err
		}
	}
	if *ingestOut != "" {
		doc, err := ingestPoints(records)
		if err != nil {
			return err
		}
		if err := writeArtifact(*ingestOut, doc); err != nil {
			return err
		}
	}
	if *quantOut != "" {
		if err := writeArtifact(*quantOut, quantPoints()); err != nil {
			return err
		}
	}
	if *scalingOut != "" {
		doc, err := scalingPoints(records)
		if err != nil {
			return err
		}
		if err := writeArtifact(*scalingOut, doc); err != nil {
			return err
		}
	}
	if *clusterOut != "" {
		doc, err := clusterPoints(records)
		if err != nil {
			return err
		}
		if err := writeArtifact(*clusterOut, doc); err != nil {
			return err
		}
	}
	return nil
}

// parseParSweep parses the -p flag: a comma-separated list of worker
// bounds, each >= 0 (0 = GOMAXPROCS), deduplicated in order.
func parseParSweep(list string) ([]int, error) {
	var sweep []int
	seen := make(map[int]bool)
	for _, fieldRaw := range strings.Split(list, ",") {
		field := strings.TrimSpace(fieldRaw)
		if field == "" {
			continue
		}
		p, err := strconv.Atoi(field)
		if err != nil || p < 0 {
			return nil, fmt.Errorf("-p: invalid parallelism %q (want integers >= 0)", field)
		}
		if !seen[p] {
			seen[p] = true
			sweep = append(sweep, p)
		}
	}
	if len(sweep) == 0 {
		return nil, fmt.Errorf("-p: empty sweep")
	}
	return sweep, nil
}

// scalingLadder is the P ladder for the scaling curve: powers of two up
// to GOMAXPROCS, always ending at GOMAXPROCS itself. On one CPU it is
// just {1}.
func scalingLadder() []int {
	maxP := runtime.GOMAXPROCS(0)
	var ps []int
	for p := 1; p < maxP; p *= 2 {
		ps = append(ps, p)
	}
	return append(ps, maxP)
}

// scalingPoints measures the four end-to-end dataplanes across the
// scaling ladder and annotates each point with its parallel efficiency
// relative to the P=1 point of the same dataplane. Training produces a
// bit-identical model at every P (the determinism contract), so the
// serving-side dataplanes all run against one shared trained pipeline.
func scalingPoints(records []ghsom.Record) (artifact, error) {
	doc := newArtifact(len(records))
	n := len(records)

	pipe, err := ghsom.TrainPipeline(records, pipelineConfig(0))
	if err != nil {
		return artifact{}, err
	}
	compiled := pipe.Compiled()
	flat := make([]float64, 0, n*compiled.Dim())
	for i := range records {
		x, err := pipe.Encode(&records[i])
		if err != nil {
			return artifact{}, err
		}
		flat = append(flat, x...)
	}
	outPlaces := make([]core.Placement, n)

	var frame bytes.Buffer
	if err := kdd.WriteColumnarBatch(&frame, records, kdd.ColumnarWriteOptions{}); err != nil {
		return artifact{}, err
	}
	var cb ghsom.ColumnarBatch
	if err := kdd.ReadColumnarBatch(bytes.NewReader(frame.Bytes()), &cb, kdd.DefaultColumnarLimits); err != nil {
		return artifact{}, err
	}
	preds := make([]ghsom.Prediction, n)

	for _, par := range scalingLadder() {
		par := par
		pipe.SetParallelism(par)
		doc.Points = append(doc.Points,
			measure("TrainPipeline", par, n, 0, func(b *testing.B) {
				cfg := pipelineConfig(par)
				for i := 0; i < b.N; i++ {
					if _, err := ghsom.TrainPipeline(records, cfg); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measure("RouteCompiled", par, n, 0, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := compiled.RouteTrainedFlat(flat, n, outPlaces, par); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measure("DetectBatch", par, n, 0, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pipe.DetectBatch(records, preds); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measure("DetectColumnar", par, n, 0, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pipe.DetectColumnar(&cb, preds); err != nil {
						b.Fatal(err)
					}
				}
			}),
		)
	}
	pipe.SetParallelism(0)

	base := make(map[string]float64)
	for _, p := range doc.Points {
		if p.Parallelism == 1 {
			base[p.Name] = p.RecordsPerSec
		}
	}
	for i := range doc.Points {
		p := &doc.Points[i]
		if b := base[p.Name]; b > 0 {
			p.Efficiency = p.RecordsPerSec / (float64(p.Parallelism) * b)
		}
	}
	return doc, nil
}

// ingestPoints measures the ingestion dataplane: wire bytes to the
// encoded feature matrix for NDJSON (pooled fast parser and the stdlib
// json.Decoder baseline) against the columnar batch format, plus the
// cold model load path heap-decoded against mmap-backed.
func ingestPoints(records []ghsom.Record) (artifact, error) {
	doc := newArtifact(len(records))

	var nd bytes.Buffer
	jenc := json.NewEncoder(&nd)
	for i := range records {
		if err := jenc.Encode(&records[i]); err != nil {
			return artifact{}, err
		}
	}
	var col bytes.Buffer
	if err := kdd.WriteColumnarBatch(&col, records, kdd.ColumnarWriteOptions{}); err != nil {
		return artifact{}, err
	}
	ndjson, columnar := nd.Bytes(), col.Bytes()

	enc := kdd.NewEncoder(records, kdd.EncoderConfig{LogTransform: true})
	d := enc.Dim()
	flat := make([]float64, len(records)*d)
	parser := kdd.NewRecordParser(bytes.NewReader(ndjson))
	var rec kdd.Record
	var cb kdd.ColumnarBatch
	doc.Points = append(doc.Points,
		measure("IngestNDJSON", 1, len(records), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parser.Reset(bytes.NewReader(ndjson))
				n := 0
				for {
					if err := parser.Next(&rec); err != nil {
						if errors.Is(err, io.EOF) {
							break
						}
						b.Fatal(err)
					}
					if err := enc.EncodeInto(&rec, flat[n*d:(n+1)*d]); err != nil {
						b.Fatal(err)
					}
					n++
				}
				if n != len(records) {
					b.Fatalf("parsed %d records, want %d", n, len(records))
				}
			}
		}),
		measure("IngestNDJSONStdlib", 1, len(records), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dec := json.NewDecoder(bytes.NewReader(ndjson))
				n := 0
				for dec.More() {
					var r kdd.Record
					if err := dec.Decode(&r); err != nil {
						b.Fatal(err)
					}
					if err := enc.EncodeInto(&r, flat[n*d:(n+1)*d]); err != nil {
						b.Fatal(err)
					}
					n++
				}
			}
		}),
		measure("IngestColumnar", 1, len(records), 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := kdd.ReadColumnarBatch(bytes.NewReader(columnar), &cb, kdd.DefaultColumnarLimits); err != nil {
					b.Fatal(err)
				}
				if err := enc.BindColumnar(&cb); err != nil {
					b.Fatal(err)
				}
				if err := enc.EncodeColumnarRows(&cb, 0, cb.Rows(), flat); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)

	// Cold model load: the same trained envelope through the heap decoder
	// (arena and tables copied out) and the mmap loader (views over the
	// page-cache-shared mapping). BatchRecords=1 so the per-record columns
	// read as per-load.
	pipe, err := ghsom.TrainPipeline(records, pipelineConfig(1))
	if err != nil {
		return artifact{}, err
	}
	dir, err := os.MkdirTemp("", "benchjson")
	if err != nil {
		return artifact{}, err
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "model.bin")
	mf, err := os.Create(modelPath)
	if err != nil {
		return artifact{}, err
	}
	if err := pipe.Save(mf); err != nil {
		mf.Close()
		return artifact{}, err
	}
	if err := mf.Close(); err != nil {
		return artifact{}, err
	}
	for _, mapped := range []bool{false, true} {
		name := "ColdLoadHeap"
		if mapped {
			name = "ColdLoadMmap"
		}
		doc.Points = append(doc.Points, measure(name, 1, 1, 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := ghsom.LoadPipelineFile(modelPath, mapped)
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	return doc, nil
}

// bmuShapes is the BMU kernel sweep: dimensions bracketing the encoded
// KDD width and unit counts from a GHSOM child map to a large flat SOM.
var bmuShapes = []struct{ dim, units int }{
	{8, 4}, {8, 64}, {8, 256},
	{32, 4}, {32, 64}, {32, 256},
	{118, 4}, {118, 64}, {118, 256},
}

// bmuPoints measures the scalar per-row BMU scan (ArgMinDistance)
// against the blocked engine (ArgMinDistanceBatch, norm-cached
// expanded-distance candidates with exact settle) on synthetic uniform
// data across the dim×units sweep, at P=1 and GOMAXPROCS.
func bmuPoints() artifact {
	const n = 2048
	doc := newArtifact(n)
	for _, sh := range bmuShapes {
		rng := rand.New(rand.NewSource(42))
		flat := make([]float64, sh.units*sh.dim)
		data := make([]float64, n*sh.dim)
		for i := range flat {
			flat[i] = rng.Float64()
		}
		for i := range data {
			data[i] = rng.Float64()
		}
		mat, err := vecmath.MatrixOver(data, n, sh.dim)
		if err != nil {
			panic(err) // static shapes; cannot fail
		}
		view := mat.View()
		norms := vecmath.SquaredNorms(flat, sh.dim, nil)
		bmus := make([]int, n)
		d2s := make([]float64, n)
		for _, par := range parSweep {
			par := par
			sp := measure("ArgMinScalar", effectivePar(par), n, 0, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					parallel.ForEach(par, n, func(r int) {
						bmus[r], d2s[r] = vecmath.ArgMinDistance(view.Row(r), flat)
					})
				}
			})
			sp.Dim, sp.Units = sh.dim, sh.units
			bp := measure("ArgMinBatch", effectivePar(par), n, 0, func(b *testing.B) {
				w := parallel.Workers(par, n)
				chunk := (n + w - 1) / w
				chunks := (n + chunk - 1) / chunk
				for i := 0; i < b.N; i++ {
					parallel.ForEach(par, chunks, func(c int) {
						lo := c * chunk
						hi := min(lo+chunk, n)
						vecmath.ArgMinDistanceBatch(view.Slice(lo, hi), flat, norms, bmus[lo:hi], d2s[lo:hi])
					})
				}
			})
			bp.Dim, bp.Units = sh.dim, sh.units
			doc.Points = append(doc.Points, sp, bp)
		}
	}
	return doc
}

// quantShapes is the quantized candidate-generation sweep: the bmuShapes
// grid widened with a 1024-unit flat codebook, where the int8 rung's
// bandwidth advantage is the acceptance headline.
var quantShapes = []struct{ dim, units int }{
	{8, 4}, {8, 64}, {8, 256}, {8, 1024},
	{32, 4}, {32, 64}, {32, 256}, {32, 1024},
	{118, 4}, {118, 64}, {118, 256}, {118, 1024},
}

// quantPoints measures the blocked BMU engine at each forced
// candidate-generation rung (f64 baseline, f32 narrowed, i8 shadow
// codebook) across the dim×units sweep, on the same synthetic uniform
// data as bmuPoints. Every rung produces bit-identical winners — the
// points differ only in throughput and in the shadow-arena bytes each
// rung carries beside the canonical f64 weights.
func quantPoints() artifact {
	const n = 2048
	doc := newArtifact(n)
	for _, sh := range quantShapes {
		rng := rand.New(rand.NewSource(42))
		flat := make([]float64, sh.units*sh.dim)
		data := make([]float64, n*sh.dim)
		for i := range flat {
			flat[i] = rng.Float64()
		}
		for i := range data {
			data[i] = rng.Float64()
		}
		mat, err := vecmath.MatrixOver(data, n, sh.dim)
		if err != nil {
			panic(err) // static shapes; cannot fail
		}
		view := mat.View()
		norms := vecmath.SquaredNorms(flat, sh.dim, nil)
		bmus := make([]int, n)
		d2s := make([]float64, n)
		for _, prec := range []vecmath.Precision{vecmath.PrecisionF64, vecmath.PrecisionF32, vecmath.PrecisionI8} {
			prec := prec
			var qa *vecmath.QuantArena
			arenaBytes := len(flat) * 8
			if prec != vecmath.PrecisionF64 {
				qa = vecmath.BuildQuantArena(flat, sh.dim, prec)
				if qa != nil {
					arenaBytes = qa.Bytes()
				}
			}
			for _, par := range parSweep {
				par := par
				qp := measure("ArgMinQuant", effectivePar(par), n, 0, func(b *testing.B) {
					w := parallel.Workers(par, n)
					chunk := (n + w - 1) / w
					chunks := (n + chunk - 1) / chunk
					for i := 0; i < b.N; i++ {
						parallel.ForEach(par, chunks, func(c int) {
							lo := c * chunk
							hi := min(lo+chunk, n)
							if qa != nil {
								vecmath.ArgMinDistanceBatchQuant(view.Slice(lo, hi), flat, norms, qa, bmus[lo:hi], d2s[lo:hi])
							} else {
								vecmath.ArgMinDistanceBatch(view.Slice(lo, hi), flat, norms, bmus[lo:hi], d2s[lo:hi])
							}
						})
					}
				})
				qp.Dim, qp.Units = sh.dim, sh.units
				qp.Precision = prec.String()
				qp.QuantArenaBytes = arenaBytes
				doc.Points = append(doc.Points, qp)
			}
		}
	}
	return doc
}

// parSweep is the worker-bound sweep shared by every bench family,
// overridden by the -p flag. Default: serial and GOMAXPROCS.
var parSweep = []int{1, 0}

// pipelineConfig returns the default pipeline config with every layer's
// Parallelism knob at par.
func pipelineConfig(par int) ghsom.PipelineConfig {
	cfg := ghsom.DefaultPipelineConfig()
	cfg.Parallelism = par
	cfg.Model.Parallelism = par
	cfg.Detector.Parallelism = par
	return cfg
}

// effectivePar resolves the knob for reporting.
func effectivePar(par int) int {
	if par == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return par
}

// inferencePoints measures DetectAll and DetectBatch.
func inferencePoints(records []ghsom.Record) (artifact, error) {
	doc := newArtifact(len(records))
	for _, par := range parSweep {
		pipe, err := ghsom.TrainPipeline(records, pipelineConfig(par))
		if err != nil {
			return artifact{}, err
		}
		effective := effectivePar(par)
		doc.Points = append(doc.Points,
			measure("DetectAll", effective, len(records), 0, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pipe.DetectAll(records); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measure("DetectBatch", effective, len(records), 0, func(b *testing.B) {
				out := make([]ghsom.Prediction, len(records))
				var err error
				if out, err = pipe.DetectBatch(records, out); err != nil {
					b.Fatal(err) // warm-up outside the timer
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pipe.DetectBatch(records, out); err != nil {
						b.Fatal(err)
					}
				}
			}),
		)
	}
	return doc, nil
}

// trainingPoints measures the som-level flat batch kernel and end-to-end
// pipeline training on the same encoded data set.
func trainingPoints(records []ghsom.Record) (artifact, error) {
	doc := newArtifact(len(records))
	// Encode once through the eval dataplane so TrainBatch sees the real
	// KDD feature matrix, not a synthetic stand-in.
	enc, err := eval.Encode(eval.Dataset{Train: records, Test: records[:1]})
	if err != nil {
		return artifact{}, err
	}
	const somEpochs = 10
	for _, par := range parSweep {
		effective := effectivePar(par)
		doc.Points = append(doc.Points,
			measure("TrainBatch", effective, enc.TrainMat.Rows(), somEpochs, func(b *testing.B) {
				m, err := som.New(5, 5, enc.TrainMat.Cols())
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < m.Units(); i++ {
					if err := m.SetWeight(i, enc.TrainMat.Row(i%enc.TrainMat.Rows())); err != nil {
						b.Fatal(err)
					}
				}
				cfg := som.TrainConfig{
					Epochs: somEpochs, Alpha0: 0.5, AlphaEnd: 0.01,
					RadiusEnd: 0.5, Kernel: som.KernelGaussian,
					Decay: som.DecayExponential, Parallelism: par,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := m.TrainBatchView(enc.TrainMat.View(), cfg); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measure("TrainPipeline", effective, len(records), 0, func(b *testing.B) {
				cfg := pipelineConfig(par)
				for i := 0; i < b.N; i++ {
					if _, err := ghsom.TrainPipeline(records, cfg); err != nil {
						b.Fatal(err)
					}
				}
			}),
		)
	}
	return doc, nil
}

// routingPoints measures the hierarchy descent itself — the tree-walk
// RouteTrainedFlat against the compiled model's table-driven
// RouteTrainedFlat — at P=1 and GOMAXPROCS, on the model a production
// pipeline actually serves (TrainPipeline with the default label cap and
// batch rule) and the records it encounters. The compiled path is the
// serving dataplane; the tree walk is the pre-compilation baseline.
func routingPoints(records []ghsom.Record) (artifact, error) {
	doc := newArtifact(len(records))
	pipe, err := ghsom.TrainPipeline(records, pipelineConfig(1))
	if err != nil {
		return artifact{}, err
	}
	model, compiled := pipe.Model(), pipe.Compiled()
	n := len(records)
	flat := make([]float64, 0, n*compiled.Dim())
	for i := range records {
		x, err := pipe.Encode(&records[i])
		if err != nil {
			return artifact{}, err
		}
		flat = append(flat, x...)
	}
	outPlaces := make([]core.Placement, n)
	for _, par := range parSweep {
		par := par
		effective := effectivePar(par)
		doc.Points = append(doc.Points,
			measure("RouteTree", effective, n, 0, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := model.RouteTrainedFlat(flat, n, outPlaces, par); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measure("RouteCompiled", effective, n, 0, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := compiled.RouteTrainedFlat(flat, n, outPlaces, par); err != nil {
						b.Fatal(err)
					}
				}
			}),
		)
	}
	return doc, nil
}

// clusterPoints measures the distributed serving tier over in-process
// replicas: one direct-to-replica HTTP baseline ("ServeDirect") against
// the gateway fronting 1–3 replicas ("Gateway-r1".."Gateway-r3"), all on
// the same NDJSON workload with concurrent clients. The r1 point minus
// the direct point is the coordinator's routing overhead; r2/r3 show the
// fan-out headroom. Parallelism reports the replica count for gateway
// points.
func clusterPoints(records []ghsom.Record) (artifact, error) {
	pipe, err := ghsom.TrainPipeline(records, pipelineConfig(0))
	if err != nil {
		return artifact{}, err
	}
	const batch = 256
	kddRecs := make([]kdd.Record, batch)
	for i := range kddRecs {
		kddRecs[i] = kdd.Record(records[i%len(records)])
	}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := range kddRecs {
		if err := enc.Encode(&kddRecs[i]); err != nil {
			return artifact{}, err
		}
	}
	payload := body.Bytes()

	startReplicas := func(n int) ([]*serve.Registry, []*httptest.Server, []string, error) {
		regs := make([]*serve.Registry, n)
		srvs := make([]*httptest.Server, n)
		urls := make([]string, n)
		for i := 0; i < n; i++ {
			regs[i] = serve.NewRegistry(serve.Config{
				Instance:   fmt.Sprintf("bench-replica-%d", i),
				MaxBatch:   256,
				FlushEvery: time.Millisecond,
			})
			if _, _, err := regs[i].Swap(serve.DefaultModelName, pipe); err != nil {
				return nil, nil, nil, err
			}
			srvs[i] = httptest.NewServer(regs[i].Mux())
			urls[i] = srvs[i].URL
		}
		return regs, srvs, urls, nil
	}
	post := func(b *testing.B, client *http.Client, target string) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				resp, err := client.Post(target+"/detect", "application/x-ndjson", bytes.NewReader(payload))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		})
	}

	doc := newArtifact(len(records))
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	defer client.CloseIdleConnections()

	// Baseline: the client talks to one replica with no coordinator.
	regs, srvs, urls, err := startReplicas(1)
	if err != nil {
		return artifact{}, err
	}
	doc.Points = append(doc.Points, measure("ServeDirect", 1, batch, 0, func(b *testing.B) {
		post(b, client, urls[0])
	}))
	srvs[0].Close()
	regs[0].Close()

	for n := 1; n <= 3; n++ {
		regs, srvs, urls, err := startReplicas(n)
		if err != nil {
			return artifact{}, err
		}
		gw, err := cluster.New(cluster.Config{
			Replicas:    urls,
			Instance:    "bench-gateway",
			Replication: n,
			HealthEvery: 250 * time.Millisecond,
		})
		if err != nil {
			return artifact{}, err
		}
		gw.CheckNow()
		front := httptest.NewServer(gw.Handler())
		doc.Points = append(doc.Points, measure(fmt.Sprintf("Gateway-r%d", n), n, batch, 0, func(b *testing.B) {
			post(b, client, front.URL)
		}))
		front.Close()
		gw.Close()
		client.CloseIdleConnections()
		for i := range srvs {
			srvs[i].Close()
			regs[i].Close()
		}
	}
	return doc, nil
}

func newArtifact(records int) artifact {
	return artifact{
		Schema:     1,
		Generated:  time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Records:    records,
	}
}

func writeArtifact(path string, doc artifact) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, p := range doc.Points {
		if p.Epochs > 0 {
			fmt.Printf("%-14s P=%-2d %12.0f rec·epochs/sec %10.1f allocs/epoch\n",
				p.Name, p.Parallelism, p.RecordEpochsPerSec, p.AllocsPerEpoch)
		} else if p.Precision != "" {
			fmt.Printf("%-14s P=%-2d dim=%-3d units=%-4d prec=%-4s %12.0f rows/sec %10d arena B\n",
				p.Name, p.Parallelism, p.Dim, p.Units, p.Precision, p.RecordsPerSec, p.QuantArenaBytes)
		} else if p.Units > 0 {
			fmt.Printf("%-14s P=%-2d dim=%-3d units=%-3d %12.0f rows/sec\n",
				p.Name, p.Parallelism, p.Dim, p.Units, p.RecordsPerSec)
		} else if p.Efficiency > 0 {
			fmt.Printf("%-14s P=%-2d %12.0f records/sec %6.2f efficiency\n",
				p.Name, p.Parallelism, p.RecordsPerSec, p.Efficiency)
		} else {
			fmt.Printf("%-14s P=%-2d %12.0f records/sec %10.4f allocs/record\n",
				p.Name, p.Parallelism, p.RecordsPerSec, p.AllocsPerRecord)
		}
	}
	return nil
}

// measure runs one benchmark point via testing.Benchmark (which scales
// b.N toward its default ~1s measuring window). epochs > 0 marks a
// training point and fills the per-epoch measures.
func measure(name string, par, nRecords, epochs int, fn func(b *testing.B)) point {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	recsPerOp := float64(nRecords)
	perOp := res.T.Seconds() / float64(res.N)
	p := point{
		Name:            name,
		Parallelism:     par,
		BatchRecords:    nRecords,
		Epochs:          epochs,
		Iterations:      res.N,
		NsPerOp:         res.NsPerOp(),
		RecordsPerSec:   recsPerOp / perOp,
		AllocsPerRecord: float64(res.AllocsPerOp()) / recsPerOp,
		BytesPerRecord:  float64(res.AllocedBytesPerOp()) / recsPerOp,
	}
	if epochs > 0 {
		p.RecordEpochsPerSec = recsPerOp * float64(epochs) / perOp
		p.AllocsPerEpoch = float64(res.AllocsPerOp()) / float64(epochs)
	}
	return p
}
