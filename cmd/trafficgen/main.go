// Command trafficgen generates a synthetic KDD-99-style traffic trace and
// writes it as kddcup.data-format CSV (default), NDJSON, or the columnar
// batch wire format ghsom-serve's /detect accepts directly.
//
// Usage:
//
//	trafficgen -scenario kdd99 -seed 1 -out train.csv
//	trafficgen -scenario small -exclude smurf,satan -out holdout-train.csv
//	trafficgen -scenario small -format columnar -frame 4096 -out trace.gwb
//	trafficgen -scenario small -format ndjson | curl --data-binary @- localhost:8741/detect
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ghsom/internal/kdd"
	"ghsom/internal/trafficgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trafficgen", flag.ContinueOnError)
	scenario := fs.String("scenario", "small", "scenario: small, kdd99, or hard")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "-", "output file (- for stdout)")
	format := fs.String("format", "csv", "output format: csv, ndjson, or columnar")
	frame := fs.Int("frame", 4096, "records per columnar frame")
	f32 := fs.Bool("f32", false, "columnar only: write numeric columns as float32 (half the bytes, rounded values)")
	exclude := fs.String("exclude", "", "comma-separated attack labels to exclude")
	listAttacks := fs.Bool("list-attacks", false, "list supported attack labels and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "csv", "ndjson", "columnar":
	default:
		return fmt.Errorf("unknown format %q (want csv, ndjson, or columnar)", *format)
	}
	if *frame < 1 {
		return fmt.Errorf("-frame must be >= 1, got %d", *frame)
	}
	if *listAttacks {
		for _, a := range trafficgen.SupportedAttacks() {
			fmt.Println(a)
		}
		return nil
	}

	var cfg trafficgen.Config
	switch *scenario {
	case "small":
		cfg = trafficgen.Small(*seed)
	case "kdd99":
		cfg = trafficgen.KDD99Like(*seed)
	case "hard":
		cfg = trafficgen.HardMix(*seed)
	default:
		return fmt.Errorf("unknown scenario %q (want small, kdd99, or hard)", *scenario)
	}
	if *exclude != "" {
		cfg = trafficgen.WithoutAttacks(cfg, strings.Split(*exclude, ",")...)
	}

	records, err := trafficgen.Generate(cfg)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := writeRecords(w, records, *format, *frame, *f32); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d records (scenario %s, seed %d, format %s)\n",
		len(records), *scenario, *seed, *format)
	return nil
}

// writeRecords renders the trace in the selected wire format. Columnar
// output carries the ground-truth labels (the trace has them) in frames
// of -frame records, so the file round-trips through eval tooling.
func writeRecords(w io.Writer, records []kdd.Record, format string, frame int, f32 bool) error {
	switch format {
	case "csv":
		return kdd.WriteAll(w, records)
	case "ndjson":
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		for i := range records {
			if err := enc.Encode(&records[i]); err != nil {
				return err
			}
		}
		return bw.Flush()
	case "columnar":
		bw := bufio.NewWriter(w)
		opts := kdd.ColumnarWriteOptions{Float32: f32, Labels: true}
		for lo := 0; lo < len(records); lo += frame {
			hi := min(lo+frame, len(records))
			if err := kdd.WriteColumnarBatch(bw, records[lo:hi], opts); err != nil {
				return err
			}
		}
		return bw.Flush()
	}
	return fmt.Errorf("unknown format %q", format)
}
