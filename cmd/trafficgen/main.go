// Command trafficgen generates a synthetic KDD-99-style traffic trace and
// writes it as kddcup.data-format CSV.
//
// Usage:
//
//	trafficgen -scenario kdd99 -seed 1 -out train.csv
//	trafficgen -scenario small -exclude smurf,satan -out holdout-train.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ghsom/internal/kdd"
	"ghsom/internal/trafficgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trafficgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trafficgen", flag.ContinueOnError)
	scenario := fs.String("scenario", "small", "scenario: small, kdd99, or hard")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "-", "output file (- for stdout)")
	exclude := fs.String("exclude", "", "comma-separated attack labels to exclude")
	listAttacks := fs.Bool("list-attacks", false, "list supported attack labels and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listAttacks {
		for _, a := range trafficgen.SupportedAttacks() {
			fmt.Println(a)
		}
		return nil
	}

	var cfg trafficgen.Config
	switch *scenario {
	case "small":
		cfg = trafficgen.Small(*seed)
	case "kdd99":
		cfg = trafficgen.KDD99Like(*seed)
	case "hard":
		cfg = trafficgen.HardMix(*seed)
	default:
		return fmt.Errorf("unknown scenario %q (want small, kdd99, or hard)", *scenario)
	}
	if *exclude != "" {
		cfg = trafficgen.WithoutAttacks(cfg, strings.Split(*exclude, ",")...)
	}

	records, err := trafficgen.Generate(cfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := kdd.WriteAll(w, records); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d records (scenario %s, seed %d)\n", len(records), *scenario, *seed)
	return nil
}
