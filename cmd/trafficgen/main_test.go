package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ghsom/internal/kdd"
)

func TestRunGeneratesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"-scenario", "small", "-seed", "9", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := kdd.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 1000 {
		t.Errorf("only %d records", len(records))
	}
}

func TestRunExclude(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"-scenario", "small", "-exclude", "neptune,smurf", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(out)
	defer f.Close()
	records, err := kdd.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if r.Label == "neptune" || r.Label == "smurf" {
			t.Fatal("excluded attack present")
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	err := run([]string{"-scenario", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("err = %v", err)
	}
}

func TestRunListAttacks(t *testing.T) {
	if err := run([]string{"-list-attacks"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunFormats checks the three wire formats carry the same trace:
// same record count, same labels, same field values record-by-record.
func TestRunFormats(t *testing.T) {
	dir := t.TempDir()
	paths := map[string]string{
		"csv":      filepath.Join(dir, "trace.csv"),
		"ndjson":   filepath.Join(dir, "trace.ndjson"),
		"columnar": filepath.Join(dir, "trace.gwb"),
	}
	for format, path := range paths {
		args := []string{"-scenario", "small", "-seed", "17", "-format", format, "-out", path}
		if format == "columnar" {
			args = append(args, "-frame", "512")
		}
		if err := run(args); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
	}

	read := func(format string) []kdd.Record {
		f, err := os.Open(paths[format])
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		switch format {
		case "csv":
			records, err := kdd.ReadAll(f)
			if err != nil {
				t.Fatal(err)
			}
			return records
		case "ndjson":
			records, err := kdd.ReadRecordsNDJSON(f, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			return records
		default:
			var records []kdd.Record
			var cb kdd.ColumnarBatch
			for {
				err := kdd.ReadColumnarBatch(f, &cb, kdd.DefaultColumnarLimits)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if !cb.HasLabels() {
					t.Fatal("columnar trace dropped ground-truth labels")
				}
				if cb.Rows() > 512 {
					t.Fatalf("frame holds %d rows, -frame was 512", cb.Rows())
				}
				for i := 0; i < cb.Rows(); i++ {
					rec, err := cb.Record(i)
					if err != nil {
						t.Fatal(err)
					}
					records = append(records, rec)
				}
			}
			return records
		}
	}

	// NDJSON and columnar are lossless, so they must agree exactly.
	// CSV rounds rate fields (kddcup format), so it only gets
	// count/label checks.
	want := read("ndjson")
	if len(want) < 1000 {
		t.Fatalf("only %d records", len(want))
	}
	got := read("columnar")
	if len(got) != len(want) {
		t.Fatalf("columnar: %d records, ndjson has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("columnar record %d = %+v, ndjson has %+v", i, got[i], want[i])
		}
	}
	csvRecs := read("csv")
	if len(csvRecs) != len(want) {
		t.Fatalf("csv: %d records, ndjson has %d", len(csvRecs), len(want))
	}
	for i := range csvRecs {
		if csvRecs[i].Label != want[i].Label {
			t.Fatalf("csv record %d label %q, ndjson has %q", i, csvRecs[i].Label, want[i].Label)
		}
	}
}

func TestRunBadFormatFlags(t *testing.T) {
	if err := run([]string{"-format", "parquet"}); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Errorf("bad format: err = %v", err)
	}
	if err := run([]string{"-format", "columnar", "-frame", "0"}); err == nil || !strings.Contains(err.Error(), "-frame") {
		t.Errorf("zero frame: err = %v", err)
	}
}
