package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ghsom/internal/kdd"
)

func TestRunGeneratesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"-scenario", "small", "-seed", "9", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := kdd.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 1000 {
		t.Errorf("only %d records", len(records))
	}
}

func TestRunExclude(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"-scenario", "small", "-exclude", "neptune,smurf", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(out)
	defer f.Close()
	records, err := kdd.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if r.Label == "neptune" || r.Label == "smurf" {
			t.Fatal("excluded attack present")
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	err := run([]string{"-scenario", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("err = %v", err)
	}
}

func TestRunListAttacks(t *testing.T) {
	if err := run([]string{"-list-attacks"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
