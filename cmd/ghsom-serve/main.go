// Command ghsom-serve serves trained pipelines as a line-rate detection
// service: NDJSON over HTTP, or NDJSON stdin→stdout. Concurrent requests
// are accumulated into micro-batches — flushed when the batch reaches
// -batch records or the -flush deadline expires, whichever comes first —
// and each micro-batch runs through the pipeline's zero-allocation
// DetectBatch dataplane on the parallel worker pool, so many small
// requests cost close to what one large request does.
//
// The server hosts a registry of named models with atomic hot-swap:
// POST /model loads a new envelope (binary v3 or legacy JSON) under a
// name without interrupting traffic — in-flight batches finish on the
// pipeline they started with, and the next batch picks up the new one.
// Requests select a model with ?model=NAME (default "default").
//
// HTTP endpoints:
//
//	POST /detect   body: one JSON kdd record per line (NDJSON), or — with
//	               Content-Type: application/x-ghsom-columnar — a stream
//	               of columnar batch frames (see internal/kdd, GHSOMWB1).
//	               The response is one JSON prediction per line, in
//	               order. Columnar frames are pre-formed batches, so they
//	               bypass the micro-batcher and run straight through the
//	               zero-copy columnar dataplane. ?model=NAME selects a
//	               registry entry.
//	POST /model    body: a pipeline envelope; loads (or hot-swaps)
//	               ?name=NAME (default "default") atomically.
//	DELETE /model  unloads ?name=NAME (the default model cannot be
//	               unloaded, only replaced).
//	GET  /models   JSON listing of the registry: name, envelope version,
//	               model shape, arena footprint, per-model serve stats.
//	GET  /stats    JSON batching/latency/throughput counters of the
//	               model selected by ?model=NAME, plus worker-pool
//	               gauges (busy/idle workers, queue depth).
//	GET  /healthz  200 once the initial model is loaded.
//
// With -pprof the stdlib profiling endpoints are mounted under
// /debug/pprof (CPU, heap, mutex, block) for diagnosing scaling stalls
// in production; they are off by default.
//
// Usage:
//
//	ghsom-serve -model model.bin -addr :8741
//	ghsom-serve -model model.bin -stdin < records.ndjson > verdicts.ndjson
//	ghsom-serve -example   # print a sample request record
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"mime"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ghsom"
	"ghsom/internal/kdd"
	"ghsom/internal/parallel"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ghsom-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("ghsom-serve", flag.ContinueOnError)
	modelPath := fs.String("model", "model.bin", "trained pipeline file")
	addr := fs.String("addr", ":8741", "HTTP listen address")
	maxBatch := fs.Int("batch", 256, "micro-batch flush size (records)")
	flushEvery := fs.Duration("flush", 2*time.Millisecond, "micro-batch flush deadline")
	par := fs.Int("parallelism", 0, "detection worker bound (0 = GOMAXPROCS)")
	useStdin := fs.Bool("stdin", false, "serve NDJSON records from stdin to stdout instead of HTTP")
	useMmap := fs.Bool("mmap", false, "mmap the model file: the weight arena serves as views of the page cache instead of heap copies")
	maxBody := fs.Int64("max-body", defaultMaxBodyBytes, "cap on one /detect request body in bytes (413 beyond)")
	maxModel := fs.Int64("max-model", defaultMaxModelBytes, "cap on one POST /model envelope in bytes (413 beyond)")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof profiling endpoints (CPU, heap, mutex, block profiles)")
	example := fs.Bool("example", false, "print one example request record as JSON and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *example {
		return printExample(stdout)
	}
	if *maxBatch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", *maxBatch)
	}
	if *flushEvery <= 0 {
		return fmt.Errorf("-flush must be positive, got %v", *flushEvery)
	}
	if *maxBody < 1 || *maxModel < 1 {
		return fmt.Errorf("-max-body and -max-model must be >= 1 byte")
	}

	pipe, err := ghsom.LoadPipelineFile(*modelPath, *useMmap)
	if err != nil {
		return err
	}
	pipe.SetParallelism(*par)
	if *useMmap {
		fmt.Fprintf(os.Stderr, "ghsom-serve: model mapped, %d bytes page-cache shared\n", pipe.MappedBytes())
	}

	if *useStdin {
		return serveStdin(pipe, *maxBatch, stdin, stdout)
	}

	reg := newRegistry(*maxBatch, *flushEvery, *par)
	reg.maxBody = *maxBody
	reg.maxModel = *maxModel
	reg.pprof = *pprofOn
	defer reg.close()
	if _, _, err := reg.swap(defaultModelName, pipe); err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           reg.mux(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "ghsom-serve: listening on %s (batch=%d flush=%v)\n", *addr, *maxBatch, *flushEvery)
	return srv.ListenAndServe()
}

// defaultModelName is the registry entry served when a request names no
// model.
const defaultModelName = "default"

// modelEntry is one hosted model: its micro-batcher (whose pipeline
// pointer hot-swaps atomically) plus registry metadata.
type modelEntry struct {
	name     string
	batcher  *batcher
	loadedAt time.Time
	swaps    int
}

// registry hosts the named models behind the HTTP surface. Lookups take
// a read lock; loading or swapping a model takes the write lock only to
// update the map and metadata — the swap itself is one atomic pointer
// store on the entry's batcher, so detection traffic never blocks on a
// model upload.
type registry struct {
	mu         sync.RWMutex
	entries    map[string]*modelEntry
	maxBatch   int
	flushEvery time.Duration
	par        int
	// maxBody and maxModel cap one /detect body and one uploaded
	// envelope; requests beyond them get 413.
	maxBody  int64
	maxModel int64
	// pprof exposes /debug/pprof on the mux when set (-pprof flag).
	pprof bool
}

func newRegistry(maxBatch int, flushEvery time.Duration, par int) *registry {
	return &registry{
		entries:    make(map[string]*modelEntry),
		maxBatch:   maxBatch,
		flushEvery: flushEvery,
		par:        par,
		maxBody:    defaultMaxBodyBytes,
		maxModel:   defaultMaxModelBytes,
	}
}

func (reg *registry) close() {
	// Take the entries out of the map before closing them, so a DELETE
	// handler racing shutdown cannot find an entry whose batcher is
	// already closed and close it a second time.
	reg.mu.Lock()
	entries := reg.entries
	reg.entries = make(map[string]*modelEntry)
	reg.mu.Unlock()
	for _, e := range entries {
		e.batcher.close()
	}
}

// get returns the named entry, or nil when absent.
func (reg *registry) get(name string) *modelEntry {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return reg.entries[name]
}

// maxRegistryModels caps the number of hosted models: each entry pins a
// pipeline and a batcher goroutine, so an unbounded registry would let a
// deploy loop with unique names exhaust memory. Stale entries are
// removed with DELETE /model.
const maxRegistryModels = 32

// swap installs pipe under name: an existing entry's pipeline pointer is
// replaced atomically (in-flight batches finish on the old pipeline, the
// next flush uses the new one — no request is dropped or torn); a new
// name gets a fresh batcher, unless the registry is at capacity. The
// returned view is snapshotted under the lock; swapped reports whether
// the entry already existed.
func (reg *registry) swap(name string, pipe *ghsom.Pipeline) (view modelView, swapped bool, err error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if e, ok := reg.entries[name]; ok {
		e.batcher.pipe.Store(pipe)
		e.loadedAt = time.Now()
		e.swaps++
		return e.view(), true, nil
	}
	if len(reg.entries) >= maxRegistryModels {
		return modelView{}, false, fmt.Errorf("registry full (%d models); DELETE unused entries first", maxRegistryModels)
	}
	e := &modelEntry{
		name:     name,
		batcher:  newBatcher(pipe, reg.maxBatch, reg.flushEvery, reg.par),
		loadedAt: time.Now(),
	}
	e.batcher.maxBody = reg.maxBody
	reg.entries[name] = e
	return e.view(), false, nil
}

// remove unloads the named entry, shutting its batcher down after
// in-flight jobs drain. Returns false when the name is unknown.
func (reg *registry) remove(name string) bool {
	reg.mu.Lock()
	e, ok := reg.entries[name]
	delete(reg.entries, name)
	reg.mu.Unlock()
	if ok {
		// Outside the lock: close drains pending jobs through one last
		// flush, which must not block other registry traffic.
		e.batcher.close()
	}
	return ok
}

// mux builds the HTTP surface over the registry.
func (reg *registry) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /detect", reg.handleDetect)
	mux.HandleFunc("POST /model", reg.handleLoadModel)
	mux.HandleFunc("DELETE /model", reg.handleUnloadModel)
	mux.HandleFunc("GET /models", reg.handleModels)
	mux.HandleFunc("GET /stats", reg.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if reg.pprof {
		// Opt-in: profiling endpoints leak operational detail, so they are
		// off unless -pprof is passed. These are the stdlib handlers that
		// net/http/pprof would install on the default mux.
		mux.HandleFunc("GET /debug/pprof/", netpprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", netpprof.Trace)
	}
	return mux
}

// requestModel resolves the ?model= selector (default "default"),
// writing a 404 when the name is unknown.
func (reg *registry) requestModel(w http.ResponseWriter, r *http.Request) *modelEntry {
	name := r.URL.Query().Get("model")
	if name == "" {
		name = defaultModelName
	}
	e := reg.get(name)
	if e == nil {
		http.Error(w, fmt.Sprintf("unknown model %q", name), http.StatusNotFound)
		return nil
	}
	return e
}

func (reg *registry) handleDetect(w http.ResponseWriter, r *http.Request) {
	if e := reg.requestModel(w, r); e != nil {
		e.batcher.handleDetect(w, r)
	}
}

func (reg *registry) handleStats(w http.ResponseWriter, r *http.Request) {
	if e := reg.requestModel(w, r); e != nil {
		e.batcher.handleStats(w, r)
	}
}

// defaultMaxModelBytes and defaultMaxBodyBytes are the -max-model and
// -max-body defaults: caps on one uploaded envelope and one /detect
// request body.
const (
	defaultMaxModelBytes = 1 << 30
	defaultMaxBodyBytes  = 64 << 20
)

// errorStatus maps a request-parsing failure to its HTTP status: bodies
// that blew through a MaxBytesReader cap are 413 (the client should not
// retry the same payload), everything else is a 400.
func errorStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// modelView is the JSON shape of one registry entry on /models and
// POST /model responses.
type modelView struct {
	Name            string    `json:"name"`
	EnvelopeVersion int       `json:"envelopeVersion"`
	LoadedAt        time.Time `json:"loadedAt"`
	Swaps           int       `json:"swaps"`
	Nodes           int       `json:"nodes"`
	Units           int       `json:"units"`
	MaxDepth        int       `json:"maxDepth"`
	ArenaBytes      int       `json:"arenaBytes"`
	TableBytes      int       `json:"tableBytes"`
	Stats           statsView `json:"stats"`
}

func (e *modelEntry) view() modelView {
	pipe := e.batcher.pipe.Load()
	c := pipe.Compiled()
	st := c.Stats()
	return modelView{
		Name:            e.name,
		EnvelopeVersion: pipe.EnvelopeVersion(),
		LoadedAt:        e.loadedAt,
		Swaps:           e.swaps,
		Nodes:           st.Maps,
		Units:           st.Units,
		MaxDepth:        st.MaxDepth,
		ArenaBytes:      c.ArenaBytes(),
		TableBytes:      c.TableBytes(),
		Stats:           e.batcher.statsSnapshot(),
	}
}

// handleLoadModel reads a pipeline envelope from the request body and
// installs it under ?name= (default "default"), hot-swapping any
// existing entry without interrupting in-flight traffic.
func (reg *registry) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = defaultModelName
	}
	// Cheap pre-check before parsing a potentially huge envelope; the
	// authoritative capacity check in swap still guards the race.
	reg.mu.RLock()
	_, exists := reg.entries[name]
	full := len(reg.entries) >= maxRegistryModels
	reg.mu.RUnlock()
	if !exists && full {
		http.Error(w, fmt.Sprintf("registry full (%d models); DELETE unused entries first", maxRegistryModels), http.StatusConflict)
		return
	}
	pipe, err := ghsom.LoadPipeline(http.MaxBytesReader(w, r.Body, reg.maxModel))
	if err != nil {
		http.Error(w, fmt.Sprintf("load model: %v", err), errorStatus(err))
		return
	}
	pipe.SetParallelism(reg.par)
	view, swapped, err := reg.swap(name, pipe)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !swapped {
		w.WriteHeader(http.StatusCreated)
	}
	json.NewEncoder(w).Encode(view)
}

// handleUnloadModel removes the ?name= entry from the registry, draining
// its batcher. The default model cannot be unloaded (swap it instead),
// so the server always has a model to serve.
func (reg *registry) handleUnloadModel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" || name == defaultModelName {
		http.Error(w, "cannot unload the default model; POST /model to replace it", http.StatusBadRequest)
		return
	}
	if !reg.remove(name) {
		http.Error(w, fmt.Sprintf("unknown model %q", name), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleModels lists the registry, sorted by name for stable output.
func (reg *registry) handleModels(w http.ResponseWriter, r *http.Request) {
	reg.mu.RLock()
	views := make([]modelView, 0, len(reg.entries))
	for _, e := range reg.entries {
		views = append(views, e.view())
	}
	reg.mu.RUnlock()
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(views)
}

// printExample emits a canonical normal connection record clients can
// template their NDJSON requests on.
func printExample(w io.Writer) error {
	rec := kdd.Record{
		Duration: 1, Protocol: "tcp", Service: "http", Flag: "SF",
		SrcBytes: 230, DstBytes: 8150, LoggedIn: true,
		Count: 8, SrvCount: 8, SameSrvRate: 1,
		DstHostCount: 30, DstHostSrvCount: 30, DstHostSameSrvRate: 1,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(rec)
}

// job is one client request moving through the batcher: its records, the
// predictions written back by the flush, and a done signal.
type job struct {
	records []kdd.Record
	preds   []ghsom.Prediction
	err     error
	done    chan struct{}
}

// serveStats is the monotonically growing counter set behind /stats.
type serveStats struct {
	mu         sync.Mutex
	start      time.Time
	batches    int64
	records    int64
	maxBatch   int
	sumLatency time.Duration
	maxLatency time.Duration
}

func (s *serveStats) record(records int, latency time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	s.records += int64(records)
	if records > s.maxBatch {
		s.maxBatch = records
	}
	s.sumLatency += latency
	if latency > s.maxLatency {
		s.maxLatency = latency
	}
}

// statsView is the marshal-safe derived view served on /stats. The
// worker-pool gauges (WorkerBound, BusyWorkers, IdleWorkers, QueueDepth)
// are point-in-time snapshots for diagnosing scaling stalls: a saturated
// queue with idle workers points at batching latency, busy workers with
// a deep queue at CPU saturation.
type statsView struct {
	Batches       int64   `json:"batches"`
	Records       int64   `json:"records"`
	MaxBatchSize  int     `json:"maxBatchSize"`
	UptimeSec     float64 `json:"uptimeSec"`
	RecordsPerSec float64 `json:"recordsPerSec"`
	MeanBatchSize float64 `json:"meanBatchSize"`
	MeanBatchMs   float64 `json:"meanBatchLatencyMs"`
	MaxBatchMs    float64 `json:"maxBatchLatencyMs"`
	// WorkerBound is the resolved per-batch worker count (the
	// -parallelism knob, 0 resolved to GOMAXPROCS).
	WorkerBound int `json:"workerBound"`
	// BusyWorkers is the worker count claimed by detect calls executing
	// right now (in-flight batches × WorkerBound); IdleWorkers is the
	// remainder of the bound, floored at zero.
	BusyWorkers int64 `json:"busyWorkers"`
	IdleWorkers int64 `json:"idleWorkers"`
	// QueueDepth is the number of jobs waiting in the micro-batch
	// channel, not yet picked up by the flush loop.
	QueueDepth int `json:"queueDepth"`
}

// snapshot derives the rate/mean fields under the lock.
func (s *serveStats) snapshot() statsView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := statsView{
		Batches:      s.batches,
		Records:      s.records,
		MaxBatchSize: s.maxBatch,
		MaxBatchMs:   s.maxLatency.Seconds() * 1e3,
	}
	up := time.Since(s.start)
	out.UptimeSec = up.Seconds()
	if up > 0 {
		out.RecordsPerSec = float64(s.records) / up.Seconds()
	}
	if s.batches > 0 {
		out.MeanBatchSize = float64(s.records) / float64(s.batches)
		out.MeanBatchMs = (s.sumLatency / time.Duration(s.batches)).Seconds() * 1e3
	}
	return out
}

// batcher accumulates jobs into micro-batches and flushes them through
// DetectBatch on size or deadline. The pipeline pointer is atomic: a
// model hot-swap stores a new pipeline, each flush loads the pointer
// exactly once, so every batch runs whole against one model — requests
// are never split or torn across a swap.
type batcher struct {
	pipe       atomic.Pointer[ghsom.Pipeline]
	maxBatch   int
	flushEvery time.Duration
	maxBody    int64
	par        int
	inflight   atomic.Int64
	jobs       chan *job
	quit       chan struct{}
	wg         sync.WaitGroup
	stats      serveStats
}

func newBatcher(pipe *ghsom.Pipeline, maxBatch int, flushEvery time.Duration, par int) *batcher {
	b := &batcher{
		maxBatch:   maxBatch,
		flushEvery: flushEvery,
		maxBody:    defaultMaxBodyBytes,
		par:        par,
		jobs:       make(chan *job, 64),
		quit:       make(chan struct{}),
	}
	b.pipe.Store(pipe)
	b.stats.start = time.Now()
	b.wg.Add(1)
	go b.loop()
	return b
}

func (b *batcher) close() {
	close(b.quit)
	b.wg.Wait()
	// Fail any job that raced past the loop's final drain, so no client
	// hangs on a batcher that will never flush again.
	for {
		select {
		case j := <-b.jobs:
			j.err = errUnloaded
			close(j.done)
		default:
			return
		}
	}
}

// errUnloaded is returned to requests that race a model unload.
var errUnloaded = fmt.Errorf("model unloaded")

// loop is the micro-batching core: it drains the job channel, flushing
// the pending batch when it reaches maxBatch records or when the oldest
// pending job has waited flushEvery.
func (b *batcher) loop() {
	defer b.wg.Done()
	var (
		pending []*job
		size    int
		timer   *time.Timer
		timeout <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timeout = nil, nil
		}
		if len(pending) == 0 {
			return
		}
		b.flush(pending, size)
		pending, size = nil, 0
	}
	for {
		select {
		case j := <-b.jobs:
			pending = append(pending, j)
			size += len(j.records)
			if size >= b.maxBatch {
				flush()
				continue
			}
			if timer == nil {
				timer = time.NewTimer(b.flushEvery)
				timeout = timer.C
			}
		case <-timeout:
			timer, timeout = nil, nil
			flush()
		case <-b.quit:
			// Drain whatever arrived before shutdown so no job hangs.
			for {
				select {
				case j := <-b.jobs:
					pending = append(pending, j)
					size += len(j.records)
				default:
					flush()
					return
				}
			}
		}
	}
}

// flush concatenates the pending jobs into one record batch, runs
// DetectBatch, and scatters the predictions back per job. A failed merged
// batch must not fail co-batched clients' valid requests (and its record
// index refers to the concatenated batch, not any one client's payload),
// so on error every job is retried individually: valid jobs succeed and
// the bad job gets an error with job-local record indices.
func (b *batcher) flush(pending []*job, size int) {
	// One pointer load per flush: the whole merged batch (and its per-job
	// retries) runs against a single pipeline even if a hot-swap lands
	// mid-flush.
	pipe := b.pipe.Load()
	batch := make([]kdd.Record, 0, size)
	for _, j := range pending {
		batch = append(batch, j.records...)
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	start := time.Now()
	preds, err := pipe.DetectBatch(batch, nil)
	if err != nil {
		// Only the per-job retries actually serve records, so only they
		// count toward /stats; the failed merged attempt is discarded.
		for _, j := range pending {
			start := time.Now()
			j.preds, j.err = pipe.DetectBatch(j.records, nil)
			if j.err == nil {
				b.stats.record(len(j.records), time.Since(start))
			}
			close(j.done)
		}
		return
	}
	b.stats.record(len(batch), time.Since(start))
	off := 0
	for _, j := range pending {
		j.preds = preds[off : off+len(j.records)]
		off += len(j.records)
		close(j.done)
	}
}

// submit enqueues records and blocks until their batch is flushed or ctx
// is canceled.
func (b *batcher) submit(ctx context.Context, records []kdd.Record) ([]ghsom.Prediction, error) {
	j := &job{records: records, done: make(chan struct{})}
	select {
	case b.jobs <- j:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.quit:
		return nil, errUnloaded
	}
	select {
	case <-j.done:
		return j.preds, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.quit:
		// The batcher is shutting down. The job may still have been
		// served by the final drain — report that result if it is
		// already in; otherwise tell the client the model went away.
		select {
		case <-j.done:
			return j.preds, j.err
		default:
			return nil, errUnloaded
		}
	}
}

// parserPool recycles NDJSON record parsers (and their internal buffers
// and string-interning tables) across requests, so the legacy ingestion
// path costs near-zero steady-state allocation too.
var parserPool = sync.Pool{New: func() any { return kdd.NewRecordParser(nil) }}

// readRecords parses NDJSON records with the pooled allocation-lean
// parser, reporting the line of the first malformed one. Accept/reject
// behavior matches the json.Decoder loop it replaced.
func readRecords(r io.Reader, maxRecords int) ([]kdd.Record, error) {
	p := parserPool.Get().(*kdd.RecordParser)
	p.Reset(r)
	out, err := p.AppendAll(nil, maxRecords)
	p.Reset(nil) // drop the body reference before pooling
	parserPool.Put(p)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// columnarPool recycles decoded-frame buffers across columnar requests.
var columnarPool = sync.Pool{New: func() any { return new(kdd.ColumnarBatch) }}

// maxRequestRecords bounds one HTTP request body by record count (the
// raw size is bounded by -max-body); bulk scoring belongs on the stdin
// path or multiple requests.
const maxRequestRecords = 100_000

func (b *batcher) handleDetect(w http.ResponseWriter, r *http.Request) {
	if ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err == nil && ct == kdd.ColumnarContentType {
		b.handleDetectColumnar(w, r)
		return
	}
	records, err := readRecords(http.MaxBytesReader(w, r.Body, b.maxBody), maxRequestRecords)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	if len(records) == 0 {
		http.Error(w, "empty request: expected NDJSON records", http.StatusBadRequest)
		return
	}
	preds, err := b.submit(r.Context(), records)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range preds {
		if err := enc.Encode(&preds[i]); err != nil {
			return // client went away mid-response
		}
	}
}

// handleDetectColumnar is the wire-format fast path: each GHSOMWB1 frame
// in the body is already a formed batch, so it skips the micro-batcher
// and runs whole through DetectColumnar — column runs decoded straight
// into the pipeline's pooled flat matrix, no intermediate Record structs
// — against one atomically-loaded pipeline per frame. Predictions stream
// out as NDJSON in record order, frame by frame. Errors on the first
// frame map to a status code (400/413/422); once output has begun a
// malformed trailing frame just ends the response.
func (b *batcher) handleDetectColumnar(w http.ResponseWriter, r *http.Request) {
	// The HTTP/1 server closes the request body on the first response
	// write; a multi-frame body interleaves reads with prediction writes,
	// so opt in to full duplex (no-op where unsupported, e.g. HTTP/2,
	// which is duplex already).
	_ = http.NewResponseController(w).EnableFullDuplex()
	body := http.MaxBytesReader(w, r.Body, b.maxBody)
	cb := columnarPool.Get().(*kdd.ColumnarBatch)
	defer columnarPool.Put(cb)
	enc := json.NewEncoder(w)
	var preds []ghsom.Prediction
	frames, total := 0, 0
	fail := func(msg string, code int) {
		if frames == 0 {
			http.Error(w, msg, code)
		}
	}
	for {
		err := kdd.ReadColumnarBatch(body, cb, kdd.DefaultColumnarLimits)
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(fmt.Sprintf("frame %d: %v", frames+1, err), errorStatus(err))
			return
		}
		if total += cb.Rows(); total > maxRequestRecords {
			fail(fmt.Sprintf("request exceeds %d records", maxRequestRecords), http.StatusBadRequest)
			return
		}
		pipe := b.pipe.Load()
		b.inflight.Add(1)
		start := time.Now()
		preds, err = pipe.DetectColumnar(cb, preds)
		b.inflight.Add(-1)
		if err != nil {
			fail(err.Error(), http.StatusUnprocessableEntity)
			return
		}
		b.stats.record(cb.Rows(), time.Since(start))
		if frames == 0 {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		frames++
		for i := range preds {
			if err := enc.Encode(&preds[i]); err != nil {
				return // client went away mid-response
			}
		}
	}
	if frames == 0 {
		http.Error(w, "empty request: expected columnar frames", http.StatusBadRequest)
	}
}

// statsSnapshot derives the counter view and overlays the point-in-time
// worker-pool gauges.
func (b *batcher) statsSnapshot() statsView {
	out := b.stats.snapshot()
	bound := parallel.Resolve(b.par)
	busy := b.inflight.Load() * int64(bound)
	out.WorkerBound = bound
	out.BusyWorkers = busy
	if idle := int64(bound) - busy; idle > 0 {
		out.IdleWorkers = idle
	}
	out.QueueDepth = len(b.jobs)
	return out
}

func (b *batcher) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := b.statsSnapshot()
	json.NewEncoder(w).Encode(&snap)
}

// serveStdin is the single-producer dataplane: NDJSON records are read
// from stdin in chunks of up to maxBatch, detected through DetectBatch
// with reused output buffers (micro-batching with one client degenerates
// to chunking, so no timer is involved), and written as NDJSON
// predictions in input order. A per-batch summary lands on stderr.
func serveStdin(pipe *ghsom.Pipeline, maxBatch int, stdin io.Reader, stdout io.Writer) error {
	dec := kdd.NewRecordParser(bufio.NewReader(stdin))
	out := bufio.NewWriter(stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	batch := make([]kdd.Record, 0, maxBatch)
	var preds []ghsom.Prediction
	var stats serveStats
	stats.start = time.Now()
	line := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		start := time.Now()
		var err error
		preds, err = pipe.DetectBatch(batch, preds)
		if err != nil {
			return fmt.Errorf("detect batch ending at record %d: %w", line, err)
		}
		stats.record(len(batch), time.Since(start))
		for i := range preds {
			if err := enc.Encode(&preds[i]); err != nil {
				return err
			}
		}
		batch = batch[:0]
		return nil
	}
	for {
		var rec kdd.Record
		err := dec.Next(&rec)
		if err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("record %d: %w", line+1, err)
		}
		line++
		batch = append(batch, rec)
		if len(batch) >= maxBatch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	snap := stats.snapshot()
	fmt.Fprintf(os.Stderr, "ghsom-serve: %d records in %d batches, %.0f records/sec, mean batch %.2fms\n",
		snap.Records, snap.Batches, snap.RecordsPerSec, snap.MeanBatchMs)
	return nil
}
