// Command ghsom-serve serves trained pipelines as a line-rate detection
// service: NDJSON over HTTP, or NDJSON stdin→stdout. Concurrent requests
// are accumulated into micro-batches — flushed when the batch reaches
// -batch records or the -flush deadline expires, whichever comes first —
// and each micro-batch runs through the pipeline's zero-allocation
// DetectBatch dataplane on the parallel worker pool, so many small
// requests cost close to what one large request does.
//
// The server hosts a registry of named models with atomic hot-swap:
// POST /model loads a new envelope (binary v3 or legacy JSON) under a
// name without interrupting traffic — in-flight batches finish on the
// pipeline they started with, and the next batch picks up the new one.
// Requests select a model with ?model=NAME (default "default").
//
// HTTP endpoints:
//
//	POST /detect   body: one JSON kdd record per line (NDJSON), or — with
//	               Content-Type: application/x-ghsom-columnar — a stream
//	               of columnar batch frames (see internal/kdd, GHSOMWB1).
//	               The response is one JSON prediction per line, in
//	               order. Columnar frames are pre-formed batches, so they
//	               bypass the micro-batcher and run straight through the
//	               zero-copy columnar dataplane. ?model=NAME selects a
//	               registry entry.
//	POST /model    body: a pipeline envelope; loads (or hot-swaps)
//	               ?name=NAME (default "default") atomically.
//	DELETE /model  unloads ?name=NAME (the default model cannot be
//	               unloaded, only replaced).
//	GET  /models   JSON listing of the registry: name, envelope version,
//	               model shape, arena footprint, per-model serve stats.
//	GET  /stats    JSON batching/latency/throughput counters of the
//	               model selected by ?model=NAME, plus worker-pool
//	               gauges (busy/idle workers, queue depth) and the
//	               overload counters (admitted, shed, deadline misses,
//	               quarantined jobs, last error).
//	GET  /healthz  readiness: 200 once the initial model is loaded and
//	               the server is not draining; 503 otherwise.
//	GET  /livez    liveness: 200 for the whole process lifetime,
//	               including drain.
//
// # Overload hardening
//
// Admission is bounded and deadline-aware: each request carries an
// absolute deadline — from the X-GHSOM-Deadline-Ms header, the request
// context, or the -default-timeout flag — and is rejected up front with
// 429 + Retry-After when the admission queue is full or the deadline has
// already passed; jobs whose deadline expires while queued are dropped
// before any dataplane work is spent on them. One malformed or poisoned
// record fails only its own request (per-job isolation plus a recover()
// barrier around the dataplane), never co-batched clients or the
// process. On SIGTERM/SIGINT the server flips /healthz to 503, stops
// admitting (503 on new work), drains in-flight batches within
// -drain-grace, and exits; POST /model hot-swaps complete even during
// drain. See the README's "Operational hardening" section.
//
// With -pprof the stdlib profiling endpoints are mounted under
// /debug/pprof (CPU, heap, mutex, block) for diagnosing scaling stalls
// in production; they are off by default. With -faults (or GHSOM_FAULTS)
// the named fault-injection points of internal/faultinject are armed for
// chaos drills.
//
// Usage:
//
//	ghsom-serve -model model.bin -addr :8741
//	ghsom-serve -model model.bin -stdin < records.ndjson > verdicts.ndjson
//	ghsom-serve -example   # print a sample request record
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"mime"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ghsom"
	"ghsom/internal/faultinject"
	"ghsom/internal/kdd"
	"ghsom/internal/parallel"
	"ghsom/internal/serveq"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ghsom-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("ghsom-serve", flag.ContinueOnError)
	modelPath := fs.String("model", "model.bin", "trained pipeline file")
	addr := fs.String("addr", ":8741", "HTTP listen address")
	maxBatch := fs.Int("batch", 256, "micro-batch flush size (records)")
	flushEvery := fs.Duration("flush", 2*time.Millisecond, "micro-batch flush deadline")
	par := fs.Int("parallelism", 0, "detection worker bound (0 = GOMAXPROCS)")
	bmuPrec := fs.String("bmu-precision", "auto", "BMU candidate-generation precision: f64, f32, i8, or auto (verdicts are identical at every setting)")
	useStdin := fs.Bool("stdin", false, "serve NDJSON records from stdin to stdout instead of HTTP")
	useMmap := fs.Bool("mmap", false, "mmap the model file: the weight arena serves as views of the page cache instead of heap copies")
	maxBody := fs.Int64("max-body", defaultMaxBodyBytes, "cap on one /detect request body in bytes (413 beyond)")
	maxModel := fs.Int64("max-model", defaultMaxModelBytes, "cap on one POST /model envelope in bytes (413 beyond)")
	queueCap := fs.Int("queue", defaultQueueCap, "admission queue capacity in jobs per model; a full queue sheds with 429")
	defaultTimeout := fs.Duration("default-timeout", defaultJobTimeout, "deadline given to requests that carry none (X-GHSOM-Deadline-Ms overrides; 0 = no deadline)")
	drainGrace := fs.Duration("drain-grace", defaultDrainGrace, "bound on draining in-flight work after SIGTERM")
	readHeaderTimeout := fs.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	readTimeout := fs.Duration("read-timeout", time.Minute, "http.Server ReadTimeout (whole-request-read bound)")
	writeTimeout := fs.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout (whole-response-write bound)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout (keep-alive reap)")
	faults := fs.String("faults", "", "arm fault-injection points, e.g. 'dataplane-latency=latency:5ms,decode-error=error' (see internal/faultinject)")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof profiling endpoints (CPU, heap, mutex, block profiles)")
	example := fs.Bool("example", false, "print one example request record as JSON and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *example {
		return printExample(stdout)
	}
	if *maxBatch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", *maxBatch)
	}
	if *flushEvery <= 0 {
		return fmt.Errorf("-flush must be positive, got %v", *flushEvery)
	}
	if *maxBody < 1 || *maxModel < 1 {
		return fmt.Errorf("-max-body and -max-model must be >= 1 byte")
	}
	if *queueCap < 1 {
		return fmt.Errorf("-queue must be >= 1, got %d", *queueCap)
	}
	if *defaultTimeout < 0 || *drainGrace <= 0 {
		return fmt.Errorf("-default-timeout must be >= 0 and -drain-grace positive")
	}
	if set, err := faultinject.ArmFromEnv(); err != nil {
		return err
	} else if set {
		fmt.Fprintf(os.Stderr, "ghsom-serve: fault injection armed from %s\n", faultinject.EnvVar)
	}
	if *faults != "" {
		if err := faultinject.Arm(*faults); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "ghsom-serve: fault injection armed from -faults")
	}

	prec, err := ghsom.ParsePrecision(*bmuPrec)
	if err != nil {
		return err
	}

	pipe, err := ghsom.LoadPipelineFile(*modelPath, *useMmap)
	if err != nil {
		return err
	}
	pipe.SetParallelism(*par)
	pipe.SetBMUPrecision(prec)
	if *useMmap {
		fmt.Fprintf(os.Stderr, "ghsom-serve: model mapped, %d bytes page-cache shared\n", pipe.MappedBytes())
	}

	if *useStdin {
		return serveStdin(pipe, *maxBatch, stdin, stdout)
	}

	reg := newRegistry(serveConfig{
		maxBatch:       *maxBatch,
		flushEvery:     *flushEvery,
		par:            *par,
		prec:           prec,
		queueCap:       *queueCap,
		defaultTimeout: *defaultTimeout,
		maxBody:        *maxBody,
		maxModel:       *maxModel,
		pprof:          *pprofOn,
	})
	if _, _, err := reg.swap(defaultModelName, pipe); err != nil {
		reg.close()
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           reg.mux(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	// SIGTERM/SIGINT begin the drain sequence instead of killing the
	// process mid-batch: readiness flips to 503, admission closes, and
	// in-flight work gets -drain-grace to finish.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ghsom-serve: listening on %s (batch=%d flush=%v queue=%d timeout=%v)\n",
		*addr, *maxBatch, *flushEvery, *queueCap, *defaultTimeout)
	select {
	case err := <-errCh:
		reg.close()
		return err
	case <-sigCtx.Done():
		stop() // restore default signal behavior: a second SIGTERM kills
		fmt.Fprintf(os.Stderr, "ghsom-serve: signal received, draining (grace %v)\n", *drainGrace)
		return drainAndShutdown(reg, srv.Shutdown, *drainGrace)
	}
}

// drainAndShutdown runs the graceful exit sequence: readiness flips to
// 503 and admission closes (beginDrain), in-flight handlers get grace to
// finish via the server's Shutdown, then the batchers flush whatever the
// final drain left and stop. Factored over a shutdown func so tests can
// drive it against an httptest server.
func drainAndShutdown(reg *registry, shutdown func(context.Context) error, grace time.Duration) error {
	reg.beginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := shutdown(ctx)
	reg.close()
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}

// Admission and lifecycle defaults.
const (
	defaultQueueCap   = 256
	defaultJobTimeout = 30 * time.Second
	defaultDrainGrace = 15 * time.Second
)

// defaultModelName is the registry entry served when a request names no
// model.
const defaultModelName = "default"

// modelEntry is one hosted model: its micro-batcher (whose pipeline
// pointer hot-swaps atomically) plus registry metadata.
type modelEntry struct {
	name     string
	batcher  *batcher
	loadedAt time.Time
	swaps    int
}

// serveConfig bundles the per-server knobs the registry hands to every
// batcher it creates.
type serveConfig struct {
	maxBatch   int
	flushEvery time.Duration
	par        int
	// prec is the BMU candidate-generation precision applied to every
	// loaded model (the -bmu-precision flag); a pure performance knob —
	// verdicts are bit-identical at every setting.
	prec ghsom.Precision
	// queueCap bounds each model's admission queue; beyond it requests
	// shed with 429 instead of building an unbounded backlog.
	queueCap int
	// defaultTimeout is the deadline given to requests that carry none.
	// Zero means no default deadline.
	defaultTimeout time.Duration
	// maxBody and maxModel cap one /detect body and one uploaded
	// envelope; requests beyond them get 413.
	maxBody  int64
	maxModel int64
	// pprof exposes /debug/pprof on the mux when set (-pprof flag).
	pprof bool
}

// registry hosts the named models behind the HTTP surface. Lookups take
// a read lock; loading or swapping a model takes the write lock only to
// update the map and metadata — the swap itself is one atomic pointer
// store on the entry's batcher, so detection traffic never blocks on a
// model upload.
type registry struct {
	mu      sync.RWMutex
	entries map[string]*modelEntry
	cfg     serveConfig
	// ready flips true when the first model lands; until then /healthz
	// reports 503 so load balancers do not route to a server that cannot
	// serve.
	ready atomic.Bool
	// draining flips true at the start of the SIGTERM drain sequence:
	// /healthz reports 503, new detection work sheds with 503, queued
	// and in-flight work still completes. /livez stays 200 throughout.
	draining  atomic.Bool
	drainOnce sync.Once
}

func newRegistry(cfg serveConfig) *registry {
	if cfg.queueCap < 1 {
		cfg.queueCap = defaultQueueCap
	}
	if cfg.maxBody < 1 {
		cfg.maxBody = defaultMaxBodyBytes
	}
	if cfg.maxModel < 1 {
		cfg.maxModel = defaultMaxModelBytes
	}
	return &registry{
		entries: make(map[string]*modelEntry),
		cfg:     cfg,
	}
}

// beginDrain starts the graceful-exit sequence: readiness goes 503 and
// every model's admission queue closes, so new work sheds while queued
// and in-flight jobs drain. Idempotent.
func (reg *registry) beginDrain() {
	reg.drainOnce.Do(func() {
		reg.draining.Store(true)
		reg.mu.RLock()
		for _, e := range reg.entries {
			e.batcher.q.CloseAdmission()
		}
		reg.mu.RUnlock()
	})
}

func (reg *registry) close() {
	// Take the entries out of the map before closing them, so a DELETE
	// handler racing shutdown cannot find an entry whose batcher is
	// already closed and close it a second time.
	reg.mu.Lock()
	entries := reg.entries
	reg.entries = make(map[string]*modelEntry)
	reg.mu.Unlock()
	for _, e := range entries {
		e.batcher.close()
	}
}

// get returns the named entry, or nil when absent.
func (reg *registry) get(name string) *modelEntry {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return reg.entries[name]
}

// maxRegistryModels caps the number of hosted models: each entry pins a
// pipeline and a batcher goroutine, so an unbounded registry would let a
// deploy loop with unique names exhaust memory. Stale entries are
// removed with DELETE /model.
const maxRegistryModels = 32

// swap installs pipe under name: an existing entry's pipeline pointer is
// replaced atomically (in-flight batches finish on the old pipeline, the
// next flush uses the new one — no request is dropped or torn); a new
// name gets a fresh batcher, unless the registry is at capacity. The
// returned view is snapshotted under the lock; swapped reports whether
// the entry already existed.
func (reg *registry) swap(name string, pipe *ghsom.Pipeline) (view modelView, swapped bool, err error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if e, ok := reg.entries[name]; ok {
		e.batcher.pipe.Store(pipe)
		e.loadedAt = time.Now()
		e.swaps++
		reg.ready.Store(true)
		return e.view(), true, nil
	}
	if len(reg.entries) >= maxRegistryModels {
		return modelView{}, false, fmt.Errorf("registry full (%d models); DELETE unused entries first", maxRegistryModels)
	}
	e := &modelEntry{
		name:     name,
		batcher:  newBatcher(pipe, reg.cfg),
		loadedAt: time.Now(),
	}
	if reg.draining.Load() {
		// A swap may land during drain (it must complete — in-flight
		// upgrades are part of the no-dropped-requests contract), but a
		// brand-new entry created mid-drain admits nothing.
		e.batcher.q.CloseAdmission()
	}
	reg.entries[name] = e
	reg.ready.Store(true)
	return e.view(), false, nil
}

// remove unloads the named entry, shutting its batcher down after
// in-flight jobs drain. Returns false when the name is unknown.
func (reg *registry) remove(name string) bool {
	reg.mu.Lock()
	e, ok := reg.entries[name]
	delete(reg.entries, name)
	reg.mu.Unlock()
	if ok {
		// Outside the lock: close drains pending jobs through one last
		// flush, which must not block other registry traffic.
		e.batcher.close()
	}
	return ok
}

// mux builds the HTTP surface over the registry.
func (reg *registry) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /detect", reg.handleDetect)
	mux.HandleFunc("POST /model", reg.handleLoadModel)
	mux.HandleFunc("DELETE /model", reg.handleUnloadModel)
	mux.HandleFunc("GET /models", reg.handleModels)
	mux.HandleFunc("GET /stats", reg.handleStats)
	// /healthz is readiness: load balancers stop routing here while the
	// initial model loads and the moment a drain begins. /livez is
	// liveness: the process is up — supervisors must not restart a
	// draining server that is still finishing in-flight work.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case reg.draining.Load():
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case !reg.ready.Load():
			http.Error(w, "loading", http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		}
	})
	mux.HandleFunc("GET /livez", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if reg.cfg.pprof {
		// Opt-in: profiling endpoints leak operational detail, so they are
		// off unless -pprof is passed. These are the stdlib handlers that
		// net/http/pprof would install on the default mux.
		mux.HandleFunc("GET /debug/pprof/", netpprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", netpprof.Trace)
	}
	return mux
}

// requestModel resolves the ?model= selector (default "default"),
// writing a 404 when the name is unknown.
func (reg *registry) requestModel(w http.ResponseWriter, r *http.Request) *modelEntry {
	name := r.URL.Query().Get("model")
	if name == "" {
		name = defaultModelName
	}
	e := reg.get(name)
	if e == nil {
		http.Error(w, fmt.Sprintf("unknown model %q", name), http.StatusNotFound)
		return nil
	}
	return e
}

func (reg *registry) handleDetect(w http.ResponseWriter, r *http.Request) {
	if reg.draining.Load() {
		// Shed before touching the body: a draining server serves what it
		// admitted, nothing new. (The closed admission queue would reject
		// anyway; this path just refuses earlier and cheaper.)
		writeDetectError(w, serveq.ErrClosed)
		return
	}
	if e := reg.requestModel(w, r); e != nil {
		e.batcher.handleDetect(w, r)
	}
}

func (reg *registry) handleStats(w http.ResponseWriter, r *http.Request) {
	if e := reg.requestModel(w, r); e != nil {
		e.batcher.handleStats(w, r)
	}
}

// defaultMaxModelBytes and defaultMaxBodyBytes are the -max-model and
// -max-body defaults: caps on one uploaded envelope and one /detect
// request body.
const (
	defaultMaxModelBytes = 1 << 30
	defaultMaxBodyBytes  = 64 << 20
)

// errorStatus maps a request-parsing failure to its HTTP status: bodies
// that blew through a MaxBytesReader cap are 413 (the client should not
// retry the same payload), everything else is a 400.
func errorStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// modelView is the JSON shape of one registry entry on /models and
// POST /model responses.
type modelView struct {
	Name            string    `json:"name"`
	EnvelopeVersion int       `json:"envelopeVersion"`
	LoadedAt        time.Time `json:"loadedAt"`
	Swaps           int       `json:"swaps"`
	Nodes           int       `json:"nodes"`
	Units           int       `json:"units"`
	MaxDepth        int       `json:"maxDepth"`
	ArenaBytes      int       `json:"arenaBytes"`
	TableBytes      int       `json:"tableBytes"`
	Stats           statsView `json:"stats"`
}

func (e *modelEntry) view() modelView {
	pipe := e.batcher.pipe.Load()
	c := pipe.Compiled()
	st := c.Stats()
	return modelView{
		Name:            e.name,
		EnvelopeVersion: pipe.EnvelopeVersion(),
		LoadedAt:        e.loadedAt,
		Swaps:           e.swaps,
		Nodes:           st.Maps,
		Units:           st.Units,
		MaxDepth:        st.MaxDepth,
		ArenaBytes:      c.ArenaBytes(),
		TableBytes:      c.TableBytes(),
		Stats:           e.batcher.statsSnapshot(),
	}
}

// handleLoadModel reads a pipeline envelope from the request body and
// installs it under ?name= (default "default"), hot-swapping any
// existing entry without interrupting in-flight traffic.
func (reg *registry) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = defaultModelName
	}
	// Cheap pre-check before parsing a potentially huge envelope; the
	// authoritative capacity check in swap still guards the race.
	reg.mu.RLock()
	_, exists := reg.entries[name]
	full := len(reg.entries) >= maxRegistryModels
	reg.mu.RUnlock()
	if !exists && full {
		http.Error(w, fmt.Sprintf("registry full (%d models); DELETE unused entries first", maxRegistryModels), http.StatusConflict)
		return
	}
	if err := faultinject.Hit(faultinject.ModelLoad); err != nil {
		http.Error(w, fmt.Sprintf("load model: %v", err), http.StatusInternalServerError)
		return
	}
	pipe, err := ghsom.LoadPipeline(http.MaxBytesReader(w, r.Body, reg.cfg.maxModel))
	if err != nil {
		http.Error(w, fmt.Sprintf("load model: %v", err), errorStatus(err))
		return
	}
	pipe.SetParallelism(reg.cfg.par)
	pipe.SetBMUPrecision(reg.cfg.prec)
	view, swapped, err := reg.swap(name, pipe)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !swapped {
		w.WriteHeader(http.StatusCreated)
	}
	json.NewEncoder(w).Encode(view)
}

// handleUnloadModel removes the ?name= entry from the registry, draining
// its batcher. The default model cannot be unloaded (swap it instead),
// so the server always has a model to serve.
func (reg *registry) handleUnloadModel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" || name == defaultModelName {
		http.Error(w, "cannot unload the default model; POST /model to replace it", http.StatusBadRequest)
		return
	}
	if !reg.remove(name) {
		http.Error(w, fmt.Sprintf("unknown model %q", name), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleModels lists the registry, sorted by name for stable output.
func (reg *registry) handleModels(w http.ResponseWriter, r *http.Request) {
	reg.mu.RLock()
	views := make([]modelView, 0, len(reg.entries))
	for _, e := range reg.entries {
		views = append(views, e.view())
	}
	reg.mu.RUnlock()
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(views)
}

// printExample emits a canonical normal connection record clients can
// template their NDJSON requests on.
func printExample(w io.Writer) error {
	rec := kdd.Record{
		Duration: 1, Protocol: "tcp", Service: "http", Flag: "SF",
		SrcBytes: 230, DstBytes: 8150, LoggedIn: true,
		Count: 8, SrvCount: 8, SameSrvRate: 1,
		DstHostCount: 30, DstHostSrvCount: 30, DstHostSameSrvRate: 1,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(rec)
}

// job is one client request moving through the batcher: its records, the
// absolute deadline it must finish by (zero = none), the predictions
// written back by the flush, and a done signal.
type job struct {
	records  []kdd.Record
	deadline time.Time
	preds    []ghsom.Prediction
	err      error
	done     chan struct{}
}

// Deadline implements serveq.Job.
func (j *job) Deadline() time.Time { return j.deadline }

// context returns a context bounded by the job's deadline, for per-job
// dataplane retries.
func (j *job) context() (context.Context, context.CancelFunc) {
	if j.deadline.IsZero() {
		return context.Background(), func() {}
	}
	return context.WithDeadline(context.Background(), j.deadline)
}

// serveStats is the monotonically growing counter set behind /stats.
type serveStats struct {
	mu         sync.Mutex
	start      time.Time
	batches    int64
	records    int64
	maxBatch   int
	sumLatency time.Duration
	maxLatency time.Duration
	// quarantined counts jobs that failed in the dataplane (poison
	// records, injected faults, recovered panics) without harming their
	// co-batched neighbors; lastError keeps the most recent failure for
	// /stats-level triage.
	quarantined int64
	lastError   string
	lastErrorAt time.Time
}

func (s *serveStats) record(records int, latency time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	s.records += int64(records)
	if records > s.maxBatch {
		s.maxBatch = records
	}
	s.sumLatency += latency
	if latency > s.maxLatency {
		s.maxLatency = latency
	}
}

// noteError records a dataplane failure; quarantine says whether it
// condemned a job (deadline misses, for example, are not quarantines).
func (s *serveStats) noteError(err error, quarantine bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if quarantine {
		s.quarantined++
	}
	s.lastError = err.Error()
	s.lastErrorAt = time.Now()
}

// statsView is the marshal-safe derived view served on /stats. The
// worker-pool gauges (WorkerBound, BusyWorkers, IdleWorkers, QueueDepth)
// are point-in-time snapshots for diagnosing scaling stalls: a saturated
// queue with idle workers points at batching latency, busy workers with
// a deep queue at CPU saturation.
type statsView struct {
	Batches       int64   `json:"batches"`
	Records       int64   `json:"records"`
	MaxBatchSize  int     `json:"maxBatchSize"`
	UptimeSec     float64 `json:"uptimeSec"`
	RecordsPerSec float64 `json:"recordsPerSec"`
	MeanBatchSize float64 `json:"meanBatchSize"`
	MeanBatchMs   float64 `json:"meanBatchLatencyMs"`
	MaxBatchMs    float64 `json:"maxBatchLatencyMs"`
	// WorkerBound is the resolved per-batch worker count (the
	// -parallelism knob, 0 resolved to GOMAXPROCS).
	WorkerBound int `json:"workerBound"`
	// BMUPrecision is the effective candidate-generation rung of the
	// model's routing descent (the -bmu-precision knob with auto
	// resolved against the model's widest codebook).
	BMUPrecision string `json:"bmuPrecision"`
	// BusyWorkers is the worker count claimed by detect calls executing
	// right now (in-flight batches × WorkerBound); IdleWorkers is the
	// remainder of the bound, floored at zero.
	BusyWorkers int64 `json:"busyWorkers"`
	IdleWorkers int64 `json:"idleWorkers"`
	// QueueDepth is the number of jobs waiting in the admission queue,
	// not yet picked up by the flush loop; QueueCap is its bound.
	QueueDepth int `json:"queueDepth"`
	QueueCap   int `json:"queueCap"`
	// Overload and hardening counters: admission outcomes from the
	// bounded deadline-aware queue, plus dataplane quarantines.
	Admitted        int64  `json:"admitted"`
	ShedQueueFull   int64  `json:"shedQueueFull"`
	ShedDeadline    int64  `json:"shedDeadline"`
	ShedClosed      int64  `json:"shedClosed"`
	DroppedDeadline int64  `json:"droppedDeadline"`
	Quarantined     int64  `json:"quarantined"`
	LastError       string `json:"lastError,omitempty"`
	LastErrorAt     string `json:"lastErrorAt,omitempty"`
}

// snapshot derives the rate/mean fields under the lock.
func (s *serveStats) snapshot() statsView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := statsView{
		Batches:      s.batches,
		Records:      s.records,
		MaxBatchSize: s.maxBatch,
		MaxBatchMs:   s.maxLatency.Seconds() * 1e3,
	}
	up := time.Since(s.start)
	out.UptimeSec = up.Seconds()
	if up > 0 {
		out.RecordsPerSec = float64(s.records) / up.Seconds()
	}
	if s.batches > 0 {
		out.MeanBatchSize = float64(s.records) / float64(s.batches)
		out.MeanBatchMs = (s.sumLatency / time.Duration(s.batches)).Seconds() * 1e3
	}
	out.Quarantined = s.quarantined
	out.LastError = s.lastError
	if !s.lastErrorAt.IsZero() {
		out.LastErrorAt = s.lastErrorAt.UTC().Format(time.RFC3339Nano)
	}
	return out
}

// batcher accumulates jobs into micro-batches and flushes them through
// DetectBatch on size or deadline. The pipeline pointer is atomic: a
// model hot-swap stores a new pipeline, each flush loads the pointer
// exactly once, so every batch runs whole against one model — requests
// are never split or torn across a swap. Admission is the bounded
// deadline-aware serveq.Queue: a full queue sheds new work instead of
// building unbounded backlog, and jobs whose deadline lapses while
// queued are dropped before costing dataplane time.
type batcher struct {
	pipe           atomic.Pointer[ghsom.Pipeline]
	maxBatch       int
	flushEvery     time.Duration
	maxBody        int64
	par            int
	defaultTimeout time.Duration
	inflight       atomic.Int64
	q              *serveq.Queue[*job]
	quit           chan struct{}
	wg             sync.WaitGroup
	stats          serveStats
}

func newBatcher(pipe *ghsom.Pipeline, cfg serveConfig) *batcher {
	b := &batcher{
		maxBatch:       cfg.maxBatch,
		flushEvery:     cfg.flushEvery,
		maxBody:        cfg.maxBody,
		par:            cfg.par,
		defaultTimeout: cfg.defaultTimeout,
		q:              serveq.New[*job](cfg.queueCap),
		quit:           make(chan struct{}),
	}
	if b.maxBody < 1 {
		b.maxBody = defaultMaxBodyBytes
	}
	b.pipe.Store(pipe)
	b.stats.start = time.Now()
	b.wg.Add(1)
	go b.loop()
	return b
}

func (b *batcher) close() {
	b.q.CloseAdmission()
	close(b.quit)
	b.wg.Wait()
	// Fail any job that raced past the loop's final drain, so no client
	// hangs on a batcher that will never flush again.
	for {
		select {
		case j := <-b.q.C():
			j.err = errUnloaded
			close(j.done)
		default:
			return
		}
	}
}

// errUnloaded is returned to requests that race a model unload.
var errUnloaded = fmt.Errorf("model unloaded")

// errDeadline is returned to jobs whose deadline lapsed before their
// batch could serve them.
var errDeadline = fmt.Errorf("deadline exceeded before detection completed")

// loop is the micro-batching core: it drains the job channel, flushing
// the pending batch when it reaches maxBatch records or when the oldest
// pending job has waited flushEvery.
func (b *batcher) loop() {
	defer b.wg.Done()
	var (
		pending []*job
		size    int
		timer   *time.Timer
		timeout <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timeout = nil, nil
		}
		if len(pending) == 0 {
			return
		}
		b.flush(pending, size)
		pending, size = nil, 0
	}
	for {
		select {
		case j := <-b.q.C():
			if !b.q.Alive(j, time.Now()) {
				// Expired while queued: fail it now, spend nothing on it.
				j.err = errDeadline
				close(j.done)
				continue
			}
			pending = append(pending, j)
			size += len(j.records)
			if size >= b.maxBatch {
				flush()
				continue
			}
			if timer == nil {
				timer = time.NewTimer(b.flushEvery)
				timeout = timer.C
			}
		case <-timeout:
			timer, timeout = nil, nil
			flush()
		case <-b.quit:
			// Drain whatever arrived before shutdown so no job hangs.
			for {
				select {
				case j := <-b.q.C():
					pending = append(pending, j)
					size += len(j.records)
				default:
					flush()
					return
				}
			}
		}
	}
}

// detectSafe runs one dataplane pass with the panic barrier and the
// chaos-drill fault points. A panicking batch (poison model state, an
// injected classify-panic) is converted to an error so the flush loop —
// and the process — survive it and quarantine only the offending jobs.
func detectSafe(ctx context.Context, pipe *ghsom.Pipeline, recs []kdd.Record, out []ghsom.Prediction) (preds []ghsom.Prediction, err error) {
	defer func() {
		if r := recover(); r != nil {
			preds, err = nil, fmt.Errorf("dataplane panic (job quarantined): %v", r)
		}
	}()
	faultinject.Hit(faultinject.DataplaneLatency)
	if err := faultinject.Hit(faultinject.ScratchExhausted); err != nil {
		return nil, err
	}
	faultinject.Hit(faultinject.ClassifyPanic)
	return pipe.DetectBatchCtx(ctx, recs, out)
}

// detectColumnarSafe is detectSafe for the columnar fast path.
func detectColumnarSafe(ctx context.Context, pipe *ghsom.Pipeline, cb *kdd.ColumnarBatch, out []ghsom.Prediction) (preds []ghsom.Prediction, err error) {
	defer func() {
		if r := recover(); r != nil {
			preds, err = nil, fmt.Errorf("dataplane panic (job quarantined): %v", r)
		}
	}()
	faultinject.Hit(faultinject.DataplaneLatency)
	if err := faultinject.Hit(faultinject.ScratchExhausted); err != nil {
		return nil, err
	}
	faultinject.Hit(faultinject.ClassifyPanic)
	return pipe.DetectColumnarCtx(ctx, cb, out)
}

// batchContext bounds a merged flush by the latest deadline among its
// jobs — but only when every job has one; a single no-deadline job means
// the batch must be allowed to run to completion.
func batchContext(pending []*job) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, j := range pending {
		if j.deadline.IsZero() {
			return context.Background(), func() {}
		}
		if j.deadline.After(latest) {
			latest = j.deadline
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// flush concatenates the pending jobs into one record batch, runs the
// dataplane, and scatters the predictions back per job. A failed merged
// batch must not fail co-batched clients' valid requests (and its record
// index refers to the concatenated batch, not any one client's payload),
// so on error every job is retried individually: valid jobs succeed and
// the bad job gets an error with job-local record indices. Jobs whose
// deadline lapsed while pending are failed without dataplane work, and
// each failure path is quarantined rather than allowed to escape.
func (b *batcher) flush(pending []*job, size int) {
	// Re-check deadlines at flush time: a job admitted alive may have
	// expired while the batch accumulated.
	now := time.Now()
	live := pending[:0]
	for _, j := range pending {
		if !b.q.Alive(j, now) {
			size -= len(j.records)
			j.err = errDeadline
			close(j.done)
			continue
		}
		live = append(live, j)
	}
	pending = live
	if len(pending) == 0 {
		return
	}
	// One pointer load per flush: the whole merged batch (and its per-job
	// retries) runs against a single pipeline even if a hot-swap lands
	// mid-flush.
	pipe := b.pipe.Load()
	batch := make([]kdd.Record, 0, size)
	for _, j := range pending {
		batch = append(batch, j.records...)
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	ctx, cancel := batchContext(pending)
	start := time.Now()
	preds, err := detectSafe(ctx, pipe, batch, nil)
	cancel()
	if err != nil {
		// Only the per-job retries actually serve records, so only they
		// count toward /stats; the failed merged attempt is discarded.
		// Each job retries under its own deadline, so one slow or poisoned
		// neighbor cannot condemn the rest.
		for _, j := range pending {
			if !b.q.Alive(j, time.Now()) {
				j.err = errDeadline
				close(j.done)
				continue
			}
			jctx, jcancel := j.context()
			start := time.Now()
			j.preds, j.err = detectSafe(jctx, pipe, j.records, nil)
			jcancel()
			if j.err == nil {
				b.stats.record(len(j.records), time.Since(start))
			} else if errors.Is(j.err, context.DeadlineExceeded) {
				b.stats.noteError(j.err, false)
				j.err = errDeadline
			} else {
				b.stats.noteError(j.err, true)
			}
			close(j.done)
		}
		return
	}
	b.stats.record(len(batch), time.Since(start))
	off := 0
	for _, j := range pending {
		j.preds = preds[off : off+len(j.records)]
		off += len(j.records)
		close(j.done)
	}
}

// submit pushes records through bounded admission and blocks until their
// batch is flushed, the deadline or ctx expires, or the batcher closes.
// Admission failures (queue full, past deadline, admission closed) come
// back immediately as serveq errors — the caller maps them to 429/503.
func (b *batcher) submit(ctx context.Context, records []kdd.Record, deadline time.Time) ([]ghsom.Prediction, error) {
	j := &job{records: records, deadline: deadline, done: make(chan struct{})}
	if err := b.q.Push(j); err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j.preds, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.quit:
		// The batcher is shutting down. The job may still have been
		// served by the final drain — report that result if it is
		// already in; otherwise tell the client the model went away.
		select {
		case <-j.done:
			return j.preds, j.err
		default:
			return nil, errUnloaded
		}
	}
}

// parserPool recycles NDJSON record parsers (and their internal buffers
// and string-interning tables) across requests, so the legacy ingestion
// path costs near-zero steady-state allocation too.
var parserPool = sync.Pool{New: func() any { return kdd.NewRecordParser(nil) }}

// readRecords parses NDJSON records with the pooled allocation-lean
// parser, reporting the line of the first malformed one. Accept/reject
// behavior matches the json.Decoder loop it replaced.
func readRecords(r io.Reader, maxRecords int) ([]kdd.Record, error) {
	if err := faultinject.Hit(faultinject.DecodeError); err != nil {
		return nil, err
	}
	p := parserPool.Get().(*kdd.RecordParser)
	p.Reset(r)
	out, err := p.AppendAll(nil, maxRecords)
	p.Reset(nil) // drop the body reference before pooling
	parserPool.Put(p)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// columnarPool recycles decoded-frame buffers across columnar requests.
var columnarPool = sync.Pool{New: func() any { return new(kdd.ColumnarBatch) }}

// maxRequestRecords bounds one HTTP request body by record count (the
// raw size is bounded by -max-body); bulk scoring belongs on the stdin
// path or multiple requests.
const maxRequestRecords = 100_000

// deadlineHeader lets clients carry an explicit time budget: the value
// is a positive integer of milliseconds from arrival.
const deadlineHeader = "X-GHSOM-Deadline-Ms"

// requestDeadline resolves the absolute deadline of one request:
// X-GHSOM-Deadline-Ms wins, then any deadline on the request context
// (e.g. a proxy timeout), then the -default-timeout fallback. A zero
// time means the request runs unbounded.
func requestDeadline(r *http.Request, def time.Duration) (time.Time, error) {
	if h := r.Header.Get(deadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return time.Time{}, fmt.Errorf("%s: want a positive integer of milliseconds, got %q", deadlineHeader, h)
		}
		return time.Now().Add(time.Duration(ms) * time.Millisecond), nil
	}
	if dl, ok := r.Context().Deadline(); ok {
		return dl, nil
	}
	if def > 0 {
		return time.Now().Add(def), nil
	}
	return time.Time{}, nil
}

// writeDetectError maps a detection-path failure to its HTTP response.
// Load shedding is deliberate and retryable — 429 with Retry-After for
// overload (full queue, lapsed deadline), 503 for a draining or unloaded
// server — while dataplane failures (poison records, injected faults,
// quarantined panics) are the client's 422. A vanished client gets
// nothing.
func writeDetectError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serveq.ErrFull), errors.Is(err, serveq.ErrPastDeadline), errors.Is(err, errDeadline):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, serveq.ErrClosed), errors.Is(err, errUnloaded):
		w.Header().Set("Retry-After", "5")
		http.Error(w, "server draining or model unloaded: "+err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled):
		// The client went away; there is no one to write to.
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
	}
}

func (b *batcher) handleDetect(w http.ResponseWriter, r *http.Request) {
	if ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err == nil && ct == kdd.ColumnarContentType {
		b.handleDetectColumnar(w, r)
		return
	}
	deadline, err := requestDeadline(r, b.defaultTimeout)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	records, err := readRecords(http.MaxBytesReader(w, r.Body, b.maxBody), maxRequestRecords)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	if len(records) == 0 {
		http.Error(w, "empty request: expected NDJSON records", http.StatusBadRequest)
		return
	}
	preds, err := b.submit(r.Context(), records, deadline)
	if err != nil {
		writeDetectError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range preds {
		if err := enc.Encode(&preds[i]); err != nil {
			return // client went away mid-response
		}
	}
}

// handleDetectColumnar is the wire-format fast path: each GHSOMWB1 frame
// in the body is already a formed batch, so it skips the micro-batcher
// and runs whole through DetectColumnar — column runs decoded straight
// into the pipeline's pooled flat matrix, no intermediate Record structs
// — against one atomically-loaded pipeline per frame. Predictions stream
// out as NDJSON in record order, frame by frame. Errors on the first
// frame map to a status code (400/413/422); once output has begun a
// malformed trailing frame just ends the response.
func (b *batcher) handleDetectColumnar(w http.ResponseWriter, r *http.Request) {
	// The HTTP/1 server closes the request body on the first response
	// write; a multi-frame body interleaves reads with prediction writes,
	// so opt in to full duplex (no-op where unsupported, e.g. HTTP/2,
	// which is duplex already).
	_ = http.NewResponseController(w).EnableFullDuplex()
	// Full duplex makes the body the handler's to finish: close it on
	// every exit so an early error return (bad frame, shed, poison) never
	// leaves the connection's reader mid-body — the server's keep-alive
	// loop would panic on the next request's read and reset the client.
	defer r.Body.Close()
	deadline, err := requestDeadline(r, b.defaultTimeout)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	frameCtx := context.Context(nil)
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		frameCtx, cancel = context.WithDeadline(r.Context(), deadline)
		defer cancel()
	}
	body := http.MaxBytesReader(w, r.Body, b.maxBody)
	cb := columnarPool.Get().(*kdd.ColumnarBatch)
	defer columnarPool.Put(cb)
	enc := json.NewEncoder(w)
	var preds []ghsom.Prediction
	frames, total := 0, 0
	fail := func(msg string, code int) {
		if frames == 0 {
			http.Error(w, msg, code)
		}
	}
	for {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			// Out of budget: shed remaining frames. Before any output this
			// is a clean 429; mid-stream the truncated NDJSON ends here.
			if frames == 0 {
				writeDetectError(w, errDeadline)
			}
			return
		}
		err := kdd.ReadColumnarBatch(body, cb, kdd.DefaultColumnarLimits)
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(fmt.Sprintf("frame %d: %v", frames+1, err), errorStatus(err))
			return
		}
		if total += cb.Rows(); total > maxRequestRecords {
			fail(fmt.Sprintf("request exceeds %d records", maxRequestRecords), http.StatusBadRequest)
			return
		}
		pipe := b.pipe.Load()
		b.inflight.Add(1)
		start := time.Now()
		preds, err = detectColumnarSafe(frameCtx, pipe, cb, preds)
		b.inflight.Add(-1)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				b.stats.noteError(err, false)
				if frames == 0 {
					writeDetectError(w, errDeadline)
				}
				return
			}
			b.stats.noteError(err, true)
			if frames == 0 {
				writeDetectError(w, err)
			}
			return
		}
		b.stats.record(cb.Rows(), time.Since(start))
		if frames == 0 {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		frames++
		for i := range preds {
			if err := enc.Encode(&preds[i]); err != nil {
				return // client went away mid-response
			}
		}
	}
	if frames == 0 {
		http.Error(w, "empty request: expected columnar frames", http.StatusBadRequest)
	}
}

// statsSnapshot derives the counter view and overlays the point-in-time
// worker-pool gauges.
func (b *batcher) statsSnapshot() statsView {
	out := b.stats.snapshot()
	bound := parallel.Resolve(b.par)
	busy := b.inflight.Load() * int64(bound)
	out.WorkerBound = bound
	if pipe := b.pipe.Load(); pipe != nil {
		out.BMUPrecision = pipe.BMUPrecision().String()
	}
	out.BusyWorkers = busy
	if idle := int64(bound) - busy; idle > 0 {
		out.IdleWorkers = idle
	}
	out.QueueDepth = b.q.Depth()
	out.QueueCap = b.q.Cap()
	qs := b.q.Stats()
	out.Admitted = qs.Admitted
	out.ShedQueueFull = qs.RejectedFull
	out.ShedDeadline = qs.RejectedDeadline
	out.ShedClosed = qs.RejectedClosed
	out.DroppedDeadline = qs.DroppedDeadline
	return out
}

func (b *batcher) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := b.statsSnapshot()
	json.NewEncoder(w).Encode(&snap)
}

// serveStdin is the single-producer dataplane: NDJSON records are read
// from stdin in chunks of up to maxBatch, detected through DetectBatch
// with reused output buffers (micro-batching with one client degenerates
// to chunking, so no timer is involved), and written as NDJSON
// predictions in input order. A per-batch summary lands on stderr.
func serveStdin(pipe *ghsom.Pipeline, maxBatch int, stdin io.Reader, stdout io.Writer) error {
	dec := kdd.NewRecordParser(bufio.NewReader(stdin))
	out := bufio.NewWriter(stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	batch := make([]kdd.Record, 0, maxBatch)
	var preds []ghsom.Prediction
	var stats serveStats
	stats.start = time.Now()
	line := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		start := time.Now()
		var err error
		preds, err = pipe.DetectBatch(batch, preds)
		if err != nil {
			return fmt.Errorf("detect batch ending at record %d: %w", line, err)
		}
		stats.record(len(batch), time.Since(start))
		for i := range preds {
			if err := enc.Encode(&preds[i]); err != nil {
				return err
			}
		}
		batch = batch[:0]
		return nil
	}
	for {
		var rec kdd.Record
		err := dec.Next(&rec)
		if err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("record %d: %w", line+1, err)
		}
		line++
		batch = append(batch, rec)
		if len(batch) >= maxBatch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	snap := stats.snapshot()
	fmt.Fprintf(os.Stderr, "ghsom-serve: %d records in %d batches, %.0f records/sec, mean batch %.2fms\n",
		snap.Records, snap.Batches, snap.RecordsPerSec, snap.MeanBatchMs)
	return nil
}
