// Command ghsom-serve serves trained pipelines as a line-rate detection
// service: NDJSON over HTTP, or NDJSON stdin→stdout. Concurrent requests
// are accumulated into micro-batches — flushed when the batch reaches
// -batch records or the -flush deadline expires, whichever comes first —
// and each micro-batch runs through the pipeline's zero-allocation
// DetectBatch dataplane on the parallel worker pool, so many small
// requests cost close to what one large request does.
//
// The server hosts a registry of named models with atomic hot-swap:
// POST /model loads a new envelope (binary v3 or legacy JSON) under a
// name without interrupting traffic — in-flight batches finish on the
// pipeline they started with, and the next batch picks up the new one.
// Requests select a model with ?model=NAME (default "default").
//
// HTTP endpoints:
//
//	POST /detect   body: one JSON kdd record per line (NDJSON), or — with
//	               Content-Type: application/x-ghsom-columnar — a stream
//	               of columnar batch frames (see internal/kdd, GHSOMWB1).
//	               The response is one JSON prediction per line, in
//	               order. Columnar frames are pre-formed batches, so they
//	               bypass the micro-batcher and run straight through the
//	               zero-copy columnar dataplane. ?model=NAME selects a
//	               registry entry.
//	POST /model    body: a pipeline envelope; loads (or hot-swaps)
//	               ?name=NAME (default "default") atomically.
//	DELETE /model  unloads ?name=NAME (the default model cannot be
//	               unloaded, only replaced).
//	GET  /models   JSON listing of the registry: name, envelope version,
//	               model shape, arena footprint, per-model serve stats.
//	GET  /stats    JSON batching/latency/throughput counters of the
//	               model selected by ?model=NAME, plus worker-pool
//	               gauges (busy/idle workers, queue depth, queue-wait
//	               aggregates) and the overload counters (admitted,
//	               shed, deadline misses, quarantined jobs, last error).
//	GET  /healthz  readiness: 200 once the initial model is loaded and
//	               the server is not draining; 503 otherwise.
//	GET  /livez    liveness: 200 for the whole process lifetime,
//	               including drain.
//
// Every response carries X-GHSOM-Instance: the server's stable identity
// (-instance, default hostname:port), so coordinators such as
// ghsom-gateway can attribute replies and health transitions to
// replicas.
//
// # Overload hardening
//
// Admission is bounded and deadline-aware: each request carries an
// absolute deadline — from the X-GHSOM-Deadline-Ms header, the request
// context, or the -default-timeout flag — and is rejected up front with
// 429 + Retry-After when the admission queue is full or the deadline has
// already passed; jobs whose deadline expires while queued are dropped
// before any dataplane work is spent on them. The Retry-After hint is
// derived from observed queue pressure (estimated backlog drain time,
// clamped to [1, 30] seconds), so clients — and the gateway's backoff —
// wait proportionally to real load. One malformed or poisoned record
// fails only its own request (per-job isolation plus a recover() barrier
// around the dataplane), never co-batched clients or the process. On
// SIGTERM/SIGINT the server flips /healthz to 503, stops admitting (503
// on new work), drains in-flight batches within -drain-grace, and exits;
// POST /model hot-swaps complete even during drain. See the README's
// "Operational hardening" section.
//
// With -pprof the stdlib profiling endpoints are mounted under
// /debug/pprof (CPU, heap, mutex, block) for diagnosing scaling stalls
// in production; they are off by default. With -faults (or GHSOM_FAULTS)
// the named fault-injection points of internal/faultinject are armed for
// chaos drills.
//
// Usage:
//
//	ghsom-serve -model model.bin -addr :8741
//	ghsom-serve -model model.bin -stdin < records.ndjson > verdicts.ndjson
//	ghsom-serve -example   # print a sample request record
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ghsom"
	"ghsom/internal/faultinject"
	"ghsom/internal/kdd"
	"ghsom/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ghsom-serve:", err)
		os.Exit(1)
	}
}

// defaultInstance derives the stable instance identity when -instance is
// not given: hostname:port of the listen address, so two replicas on one
// host stay distinguishable.
func defaultInstance(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		port = addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		if h, err := os.Hostname(); err == nil {
			host = h
		} else {
			host = "localhost"
		}
	}
	return net.JoinHostPort(host, port)
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("ghsom-serve", flag.ContinueOnError)
	modelPath := fs.String("model", "model.bin", "trained pipeline file")
	addr := fs.String("addr", ":8741", "HTTP listen address")
	instance := fs.String("instance", "", "stable instance identity surfaced in X-GHSOM-Instance and /stats (default hostname:port)")
	maxBatch := fs.Int("batch", 256, "micro-batch flush size (records)")
	flushEvery := fs.Duration("flush", 2*time.Millisecond, "micro-batch flush deadline")
	par := fs.Int("parallelism", 0, "detection worker bound (0 = GOMAXPROCS)")
	bmuPrec := fs.String("bmu-precision", "auto", "BMU candidate-generation precision: f64, f32, i8, or auto (verdicts are identical at every setting)")
	useStdin := fs.Bool("stdin", false, "serve NDJSON records from stdin to stdout instead of HTTP")
	useMmap := fs.Bool("mmap", false, "mmap the model file: the weight arena serves as views of the page cache instead of heap copies")
	maxBody := fs.Int64("max-body", serve.DefaultMaxBodyBytes, "cap on one /detect request body in bytes (413 beyond)")
	maxModel := fs.Int64("max-model", serve.DefaultMaxModelBytes, "cap on one POST /model envelope in bytes (413 beyond)")
	queueCap := fs.Int("queue", serve.DefaultQueueCap, "admission queue capacity in jobs per model; a full queue sheds with 429")
	defaultTimeout := fs.Duration("default-timeout", serve.DefaultJobTimeout, "deadline given to requests that carry none (X-GHSOM-Deadline-Ms overrides; 0 = no deadline)")
	drainGrace := fs.Duration("drain-grace", serve.DefaultDrainGrace, "bound on draining in-flight work after SIGTERM")
	readHeaderTimeout := fs.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	readTimeout := fs.Duration("read-timeout", time.Minute, "http.Server ReadTimeout (whole-request-read bound)")
	writeTimeout := fs.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout (whole-response-write bound)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout (keep-alive reap)")
	faults := fs.String("faults", "", "arm fault-injection points, e.g. 'dataplane-latency=latency:5ms,decode-error=error' (see internal/faultinject)")
	pprofOn := fs.Bool("pprof", false, "expose /debug/pprof profiling endpoints (CPU, heap, mutex, block profiles)")
	example := fs.Bool("example", false, "print one example request record as JSON and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *example {
		return printExample(stdout)
	}
	if *maxBatch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", *maxBatch)
	}
	if *flushEvery <= 0 {
		return fmt.Errorf("-flush must be positive, got %v", *flushEvery)
	}
	if *maxBody < 1 || *maxModel < 1 {
		return fmt.Errorf("-max-body and -max-model must be >= 1 byte")
	}
	if *queueCap < 1 {
		return fmt.Errorf("-queue must be >= 1, got %d", *queueCap)
	}
	if *defaultTimeout < 0 || *drainGrace <= 0 {
		return fmt.Errorf("-default-timeout must be >= 0 and -drain-grace positive")
	}
	if set, err := faultinject.ArmFromEnv(); err != nil {
		return err
	} else if set {
		fmt.Fprintf(os.Stderr, "ghsom-serve: fault injection armed from %s\n", faultinject.EnvVar)
	}
	if *faults != "" {
		if err := faultinject.Arm(*faults); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "ghsom-serve: fault injection armed from -faults")
	}

	prec, err := ghsom.ParsePrecision(*bmuPrec)
	if err != nil {
		return err
	}

	pipe, err := ghsom.LoadPipelineFile(*modelPath, *useMmap)
	if err != nil {
		return err
	}
	pipe.SetParallelism(*par)
	pipe.SetBMUPrecision(prec)
	if *useMmap {
		fmt.Fprintf(os.Stderr, "ghsom-serve: model mapped, %d bytes page-cache shared\n", pipe.MappedBytes())
	}

	if *useStdin {
		return serveStdin(pipe, *maxBatch, stdin, stdout)
	}

	if *instance == "" {
		*instance = defaultInstance(*addr)
	}
	reg := serve.NewRegistry(serve.Config{
		Instance:       *instance,
		MaxBatch:       *maxBatch,
		FlushEvery:     *flushEvery,
		Parallelism:    *par,
		Precision:      prec,
		QueueCap:       *queueCap,
		DefaultTimeout: *defaultTimeout,
		MaxBody:        *maxBody,
		MaxModel:       *maxModel,
		Pprof:          *pprofOn,
	})
	if _, _, err := reg.Swap(serve.DefaultModelName, pipe); err != nil {
		reg.Close()
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           reg.Mux(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	// SIGTERM/SIGINT begin the drain sequence instead of killing the
	// process mid-batch: readiness flips to 503, admission closes, and
	// in-flight work gets -drain-grace to finish.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ghsom-serve: %s listening on %s (batch=%d flush=%v queue=%d timeout=%v)\n",
		*instance, *addr, *maxBatch, *flushEvery, *queueCap, *defaultTimeout)
	select {
	case err := <-errCh:
		reg.Close()
		return err
	case <-sigCtx.Done():
		stop() // restore default signal behavior: a second SIGTERM kills
		fmt.Fprintf(os.Stderr, "ghsom-serve: signal received, draining (grace %v)\n", *drainGrace)
		return drainAndShutdown(reg, srv.Shutdown, *drainGrace)
	}
}

// drainAndShutdown runs the graceful exit sequence: readiness flips to
// 503 and admission closes (BeginDrain), in-flight handlers get grace to
// finish via the server's Shutdown, then the batchers flush whatever the
// final drain left and stop. Factored over a shutdown func so tests can
// drive it against an httptest server.
func drainAndShutdown(reg *serve.Registry, shutdown func(context.Context) error, grace time.Duration) error {
	reg.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := shutdown(ctx)
	reg.Close()
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}

// printExample emits a canonical normal connection record clients can
// template their NDJSON requests on.
func printExample(w io.Writer) error {
	rec := kdd.Record{
		Duration: 1, Protocol: "tcp", Service: "http", Flag: "SF",
		SrcBytes: 230, DstBytes: 8150, LoggedIn: true,
		Count: 8, SrvCount: 8, SameSrvRate: 1,
		DstHostCount: 30, DstHostSrvCount: 30, DstHostSameSrvRate: 1,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(rec)
}

// stdinStats is the minimal batch accounting behind the stdin path's
// exit summary; the HTTP path's full counter set lives in internal/serve.
type stdinStats struct {
	start      time.Time
	batches    int64
	records    int64
	sumLatency time.Duration
}

// serveStdin is the single-producer dataplane: NDJSON records are read
// from stdin in chunks of up to maxBatch, detected through DetectBatch
// with reused output buffers (micro-batching with one client degenerates
// to chunking, so no timer is involved), and written as NDJSON
// predictions in input order. A per-batch summary lands on stderr.
func serveStdin(pipe *ghsom.Pipeline, maxBatch int, stdin io.Reader, stdout io.Writer) error {
	dec := kdd.NewRecordParser(bufio.NewReader(stdin))
	out := bufio.NewWriter(stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	batch := make([]kdd.Record, 0, maxBatch)
	var preds []ghsom.Prediction
	stats := stdinStats{start: time.Now()}
	line := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		start := time.Now()
		var err error
		preds, err = pipe.DetectBatch(batch, preds)
		if err != nil {
			return fmt.Errorf("detect batch ending at record %d: %w", line, err)
		}
		stats.batches++
		stats.records += int64(len(batch))
		stats.sumLatency += time.Since(start)
		for i := range preds {
			if err := enc.Encode(&preds[i]); err != nil {
				return err
			}
		}
		batch = batch[:0]
		return nil
	}
	for {
		var rec kdd.Record
		err := dec.Next(&rec)
		if err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("record %d: %w", line+1, err)
		}
		line++
		batch = append(batch, rec)
		if len(batch) >= maxBatch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	var rps, meanMs float64
	if up := time.Since(stats.start); up > 0 {
		rps = float64(stats.records) / up.Seconds()
	}
	if stats.batches > 0 {
		meanMs = (stats.sumLatency / time.Duration(stats.batches)).Seconds() * 1e3
	}
	fmt.Fprintf(os.Stderr, "ghsom-serve: %d records in %d batches, %.0f records/sec, mean batch %.2fms\n",
		stats.records, stats.batches, rps, meanMs)
	return nil
}
