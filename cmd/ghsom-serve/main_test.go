package main

// CLI-level tests: the stdin dataplane, flag validation, and the mmap
// load path. The registry/batcher/HTTP surface is tested in
// internal/serve, which this command is a thin shell over.

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ghsom"
	"ghsom/internal/kdd"
	"ghsom/internal/trafficgen"
)

// servePipe caches one trained pipeline and its generated records across
// the tests of this package.
var servePipe struct {
	once sync.Once
	pipe *ghsom.Pipeline
	recs []kdd.Record
	err  error
}

func testPipeline(t *testing.T) (*ghsom.Pipeline, []kdd.Record) {
	t.Helper()
	if testing.Short() {
		t.Skip("serving integration test; skipped with -short")
	}
	servePipe.once.Do(func() {
		recs, err := trafficgen.Generate(trafficgen.Small(71))
		if err != nil {
			servePipe.err = err
			return
		}
		cfg := ghsom.DefaultPipelineConfig()
		cfg.Model.EpochsPerGrowth = 3
		cfg.Model.FineTuneEpochs = 3
		cfg.Model.MaxGrowIters = 6
		cfg.Model.MaxDepth = 3
		cfg.TrainCapPerLabel = 800
		servePipe.pipe, servePipe.err = ghsom.TrainPipeline(recs, cfg)
		servePipe.recs = recs
	})
	if servePipe.err != nil {
		t.Fatal(servePipe.err)
	}
	return servePipe.pipe, servePipe.recs
}

// ndjson renders records as one JSON document per line.
func ndjson(t *testing.T, recs []kdd.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// decodePreds parses an NDJSON prediction stream.
func decodePreds(t *testing.T, r io.Reader) []ghsom.Prediction {
	t.Helper()
	dec := json.NewDecoder(r)
	var out []ghsom.Prediction
	for {
		var p ghsom.Prediction
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// TestServeStdin drives the stdin→stdout NDJSON dataplane and checks
// output order and equivalence.
func TestServeStdin(t *testing.T) {
	pipe, recs := testPipeline(t)
	eval := recs[200:500]
	var out bytes.Buffer
	if err := serveStdin(pipe, 64, bytes.NewReader(ndjson(t, eval)), &out); err != nil {
		t.Fatal(err)
	}
	preds := decodePreds(t, &out)
	want, err := pipe.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(want))
	}
	for i := range preds {
		if preds[i] != want[i] {
			t.Fatalf("record %d: stdin %+v, direct %+v", i, preds[i], want[i])
		}
	}
}

func TestServeStdinRejectsGarbage(t *testing.T) {
	pipe, _ := testPipeline(t)
	err := serveStdin(pipe, 8, strings.NewReader("{\"Protocol\":\"tcp\"}\nnot-json\n"), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "record 2") {
		t.Errorf("err = %v, want record 2 parse failure", err)
	}
}

func TestRunExampleAndFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-example"}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	var rec kdd.Record
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("example output not a record: %v", err)
	}
	if rec.Protocol != "tcp" || rec.Service == "" {
		t.Errorf("example record = %+v", rec)
	}
	if err := run([]string{"-batch", "0", "-model", "nope.json"}, nil, io.Discard); err == nil {
		t.Error("batch 0 accepted")
	}
	if err := run([]string{"-flush", "-1ms", "-model", "nope.json"}, nil, io.Discard); err == nil {
		t.Error("negative flush accepted")
	}
	if err := run([]string{"-model", "/nonexistent/model.json"}, nil, io.Discard); err == nil {
		t.Error("missing model accepted")
	}
}

// TestDefaultInstance pins the hostname:port fallback of -instance.
func TestDefaultInstance(t *testing.T) {
	host, err := os.Hostname()
	if err != nil {
		t.Skip("no hostname")
	}
	if got := defaultInstance(":8741"); got != host+":8741" {
		t.Errorf("defaultInstance(\":8741\") = %q, want %q", got, host+":8741")
	}
	if got := defaultInstance("10.0.0.7:9000"); got != "10.0.0.7:9000" {
		t.Errorf("defaultInstance(\"10.0.0.7:9000\") = %q", got)
	}
}

// TestServeMmapFlag runs the real CLI entry with -mmap over a saved
// envelope on the stdin dataplane, proving the mapped load path serves
// identical verdicts end to end.
func TestServeMmapFlag(t *testing.T) {
	pipe, recs := testPipeline(t)
	eval := recs[600:700]
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"-model", path, "-mmap", "-stdin", "-parallelism", "1"},
		bytes.NewReader(ndjson(t, eval)), &out)
	if err != nil {
		t.Fatal(err)
	}
	preds := decodePreds(t, &out)
	want, err := pipe.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(want))
	}
	for i := range preds {
		if preds[i] != want[i] {
			t.Fatalf("record %d: mmap stdin %+v, direct %+v", i, preds[i], want[i])
		}
	}
	if err := run([]string{"-model", path, "-max-body", "0"}, nil, io.Discard); err == nil {
		t.Error("zero -max-body accepted")
	}
}
