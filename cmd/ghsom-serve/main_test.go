package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ghsom"
	"ghsom/internal/kdd"
	"ghsom/internal/trafficgen"
)

// servePipe caches one trained pipeline and its generated records across
// the tests of this package.
var servePipe struct {
	once sync.Once
	pipe *ghsom.Pipeline
	recs []kdd.Record
	err  error
}

func testPipeline(t *testing.T) (*ghsom.Pipeline, []kdd.Record) {
	t.Helper()
	if testing.Short() {
		t.Skip("serving integration test; skipped with -short")
	}
	servePipe.once.Do(func() {
		recs, err := trafficgen.Generate(trafficgen.Small(71))
		if err != nil {
			servePipe.err = err
			return
		}
		cfg := ghsom.DefaultPipelineConfig()
		cfg.Model.EpochsPerGrowth = 3
		cfg.Model.FineTuneEpochs = 3
		cfg.Model.MaxGrowIters = 6
		cfg.Model.MaxDepth = 3
		cfg.TrainCapPerLabel = 800
		servePipe.pipe, servePipe.err = ghsom.TrainPipeline(recs, cfg)
		servePipe.recs = recs
	})
	if servePipe.err != nil {
		t.Fatal(servePipe.err)
	}
	return servePipe.pipe, servePipe.recs
}

// ndjson renders records as one JSON document per line.
func ndjson(t *testing.T, recs []kdd.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// decodePreds parses an NDJSON prediction stream.
func decodePreds(t *testing.T, r io.Reader) []ghsom.Prediction {
	t.Helper()
	dec := json.NewDecoder(r)
	var out []ghsom.Prediction
	for {
		var p ghsom.Prediction
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// TestBatcherCoalescesAndMatchesDetectAll submits many small concurrent
// requests through the micro-batcher and verifies every client gets the
// same predictions the direct batch path produces, and that coalescing
// actually happened (fewer batches than jobs).
func TestBatcherCoalescesAndMatchesDetectAll(t *testing.T) {
	pipe, recs := testPipeline(t)
	eval := recs[:600]
	want, err := pipe.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	b := newBatcher(pipe, 128, 5*time.Millisecond)
	defer b.close()

	const jobRecs = 5
	nJobs := len(eval) / jobRecs
	got := make([][]ghsom.Prediction, nJobs)
	var wg sync.WaitGroup
	errs := make([]error, nJobs)
	for j := 0; j < nJobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			got[j], errs[j] = b.submit(context.Background(), eval[j*jobRecs:(j+1)*jobRecs])
		}(j)
	}
	wg.Wait()
	for j := 0; j < nJobs; j++ {
		if errs[j] != nil {
			t.Fatalf("job %d: %v", j, errs[j])
		}
		for i, p := range got[j] {
			if p != want[j*jobRecs+i] {
				t.Fatalf("job %d record %d: batched %+v, direct %+v", j, i, p, want[j*jobRecs+i])
			}
		}
	}
	snap := b.stats.snapshot()
	if snap.Records != int64(nJobs*jobRecs) {
		t.Errorf("stats.records = %d, want %d", snap.Records, nJobs*jobRecs)
	}
	if snap.Batches >= int64(nJobs) {
		t.Errorf("micro-batching did not coalesce: %d batches for %d jobs", snap.Batches, nJobs)
	}
}

// TestBatcherIsolatesBadJob verifies a bad record in one client's request
// does not fail co-batched valid requests, and that the failing client's
// error carries its own record index, not the merged batch's.
func TestBatcherIsolatesBadJob(t *testing.T) {
	pipe, recs := testPipeline(t)
	// Large flush window + batch so both jobs coalesce into one flush.
	b := newBatcher(pipe, 1024, 50*time.Millisecond)
	defer b.close()

	good := recs[:20]
	bad := append([]kdd.Record(nil), recs[20:30]...)
	bad[7].Flag = "BOGUS"

	var wg sync.WaitGroup
	var goodPreds, badPreds []ghsom.Prediction
	var goodErr, badErr error
	wg.Add(2)
	go func() { defer wg.Done(); goodPreds, goodErr = b.submit(context.Background(), good) }()
	go func() { defer wg.Done(); badPreds, badErr = b.submit(context.Background(), bad) }()
	wg.Wait()

	if goodErr != nil {
		t.Fatalf("valid job failed alongside a bad co-batched job: %v", goodErr)
	}
	want, err := pipe.DetectAll(good)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if goodPreds[i] != want[i] {
			t.Fatalf("record %d: isolated retry %+v, direct %+v", i, goodPreds[i], want[i])
		}
	}
	if badErr == nil || !strings.Contains(badErr.Error(), "record 7") {
		t.Errorf("bad job err = %v, want its own record 7", badErr)
	}
	if badPreds != nil {
		t.Error("bad job received predictions despite error")
	}
}

// TestHandleDetectHTTP exercises the HTTP surface end to end.
func TestHandleDetectHTTP(t *testing.T) {
	pipe, recs := testPipeline(t)
	eval := recs[100:160]
	b := newBatcher(pipe, 64, 2*time.Millisecond)
	defer b.close()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /detect", b.handleDetect)
	mux.HandleFunc("GET /stats", b.handleStats)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", bytes.NewReader(ndjson(t, eval)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	preds := decodePreds(t, resp.Body)
	want, err := pipe.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(want))
	}
	for i := range preds {
		if preds[i] != want[i] {
			t.Fatalf("record %d: http %+v, direct %+v", i, preds[i], want[i])
		}
	}

	// Malformed and empty bodies are client errors.
	for _, body := range []string{"", "{not json}"} {
		resp, err := http.Post(srv.URL+"/detect", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Stats reflect the served traffic.
	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap statsView
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Records < int64(len(eval)) || snap.Batches < 1 {
		t.Errorf("stats = %+v, want >= %d records in >= 1 batch", snap, len(eval))
	}
}

// TestServeStdin drives the stdin→stdout NDJSON dataplane and checks
// output order and equivalence.
func TestServeStdin(t *testing.T) {
	pipe, recs := testPipeline(t)
	eval := recs[200:500]
	var out bytes.Buffer
	if err := serveStdin(pipe, 64, bytes.NewReader(ndjson(t, eval)), &out); err != nil {
		t.Fatal(err)
	}
	preds := decodePreds(t, &out)
	want, err := pipe.DetectAll(eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(want) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(want))
	}
	for i := range preds {
		if preds[i] != want[i] {
			t.Fatalf("record %d: stdin %+v, direct %+v", i, preds[i], want[i])
		}
	}
}

func TestServeStdinRejectsGarbage(t *testing.T) {
	pipe, _ := testPipeline(t)
	err := serveStdin(pipe, 8, strings.NewReader("{\"Protocol\":\"tcp\"}\nnot-json\n"), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "record 2") {
		t.Errorf("err = %v, want record 2 parse failure", err)
	}
}

func TestRunExampleAndFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-example"}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	var rec kdd.Record
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("example output not a record: %v", err)
	}
	if rec.Protocol != "tcp" || rec.Service == "" {
		t.Errorf("example record = %+v", rec)
	}
	if err := run([]string{"-batch", "0", "-model", "nope.json"}, nil, io.Discard); err == nil {
		t.Error("batch 0 accepted")
	}
	if err := run([]string{"-flush", "-1ms", "-model", "nope.json"}, nil, io.Discard); err == nil {
		t.Error("negative flush accepted")
	}
	if err := run([]string{"-model", "/nonexistent/model.json"}, nil, io.Discard); err == nil {
		t.Error("missing model accepted")
	}
}
