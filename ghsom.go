// Package ghsom is a Go implementation of network traffic anomaly
// detection based on the Growing Hierarchical Self-Organizing Map
// (GHSOM), reproducing the DSN 2013 paper "Network traffic anomaly
// detection based on growing hierarchical SOM".
//
// The package is a façade over the repository's internal modules. The
// highest-level entry point is the Pipeline, which bundles the whole
// detection chain — KDD-99 record encoding, feature scaling, GHSOM
// training, unit labeling, and quantization-error novelty detection — and
// is what the examples and CLIs use:
//
//	records, _ := ghsom.GenerateTraffic(ghsom.SmallScenario(1))
//	pipe, _ := ghsom.TrainPipeline(records, ghsom.DefaultPipelineConfig())
//	verdict, _ := pipe.Detect(&records[0])
//	fmt.Println(verdict.Label, verdict.Attack)
//
// Lower-level building blocks (the raw GHSOM over plain vectors, the flat
// SOM substrate, the baselines) are exposed through type aliases so
// downstream code can compose its own pipelines without importing
// internal packages.
//
// Training and batch inference are parallel by default: every layer
// exposes a Parallelism knob (0 = GOMAXPROCS, 1 = serial) — see
// PipelineConfig.Parallelism, ModelConfig.Parallelism, and
// DetectorConfig.Parallelism — and results are bit-for-bit identical at
// every setting (see the "Performance & parallelism" section of the
// README).
//
// Inference runs on a flat, buffer-reusing batch dataplane: DetectBatch
// classifies a batch into a caller-owned prediction slice with zero
// per-record heap allocation in steady state, and Detect/DetectAll are
// thin wrappers over the same path (see the "Batch inference & serving"
// section of the README and cmd/ghsom-serve for the micro-batching
// NDJSON server built on top).
package ghsom

import (
	"io"

	"ghsom/internal/anomaly"
	"ghsom/internal/core"
	"ghsom/internal/kdd"
	"ghsom/internal/trafficgen"
	"ghsom/internal/vecmath"
)

// Record is one KDD-99 connection record (41 features plus label).
type Record = kdd.Record

// Category is the coarse KDD attack taxonomy.
type Category = kdd.Category

// The five record categories.
const (
	Normal = kdd.Normal
	DoS    = kdd.DoS
	Probe  = kdd.Probe
	R2L    = kdd.R2L
	U2R    = kdd.U2R
)

// Model is a trained growing hierarchical self-organizing map.
type Model = core.GHSOM

// CompiledModel is a trained GHSOM compiled for serving: all weights in
// one shared row-major arena with flat routing tables, producing
// placements byte-identical to the tree walk (see core.Compile).
type CompiledModel = core.Compiled

// CompileModel packs a trained model into its compiled serving form.
func CompileModel(m *Model) *CompiledModel { return core.Compile(m) }

// ModelConfig controls GHSOM training (tau1, tau2, depth caps, ...).
type ModelConfig = core.Config

// Precision selects the candidate-generation rung of the blocked BMU
// engine (see ModelConfig.BMUPrecision and Pipeline.SetBMUPrecision).
// Results are bit-for-bit identical at every setting — reduced-precision
// shadow arenas only nominate candidates and every winner is settled
// with the canonical f64 kernel — so the knob is purely a performance
// control, like Parallelism.
type Precision = vecmath.Precision

// The candidate-generation precision rungs. PrecisionAuto (the zero
// value) engages the int8 shadow arena only on codebooks large enough to
// pay for it; the GHSOM_BMU_PRECISION environment variable (f64, f32,
// i8, auto) overrides Auto without code changes.
const (
	PrecisionAuto = vecmath.PrecisionAuto
	PrecisionF64  = vecmath.PrecisionF64
	PrecisionF32  = vecmath.PrecisionF32
	PrecisionI8   = vecmath.PrecisionI8
)

// ParsePrecision parses a precision name ("f64", "f32", "i8", "auto",
// "" for auto) as accepted by the GHSOM_BMU_PRECISION environment
// variable and the CLI flags.
func ParsePrecision(s string) (Precision, error) { return vecmath.ParsePrecision(s) }

// Placement identifies where a vector lands in a trained hierarchy.
type Placement = core.Placement

// Prediction is a detector verdict for one record.
type Prediction = anomaly.Prediction

// CellQE is the quantization result for one row of a flat batch.
type CellQE = anomaly.CellQE

// BatchQuantizer is a vector quantizer with a flat-batch fast path; the
// detector's batch classification uses it when available. The trained
// GHSOM adapter implements it with cached cell names, which is what makes
// steady-state batch inference allocation-free.
type BatchQuantizer = anomaly.BatchQuantizer

// DetectorConfig controls unit labeling and novelty thresholds.
type DetectorConfig = anomaly.Config

// GeneratorConfig describes a synthetic traffic scenario.
type GeneratorConfig = trafficgen.Config

// ColumnarBatch is one decoded frame of the columnar batch wire format
// (magic GHSOMWB1): numeric features as contiguous column runs and
// categoricals as small-int codes against per-frame symbol tables. Frames
// are read with ReadColumnarBatch and classified with
// Pipeline.DetectColumnar, which encodes the columns straight into the
// inference dataplane's flat matrix — no intermediate Record structs.
type ColumnarBatch = kdd.ColumnarBatch

// ColumnarLimits bounds what ReadColumnarBatch accepts from one frame.
type ColumnarLimits = kdd.ColumnarLimits

// ColumnarWriteOptions configures WriteColumnarBatch.
type ColumnarWriteOptions = kdd.ColumnarWriteOptions

// ColumnarContentType is the media type of the columnar wire format on
// HTTP ingestion paths.
const ColumnarContentType = kdd.ColumnarContentType

// DefaultColumnarLimits returns the package-cap frame limits.
func DefaultColumnarLimits() ColumnarLimits { return kdd.DefaultColumnarLimits }

// ReadColumnarBatch reads the next columnar frame from r into cb,
// reusing cb's buffers. It returns io.EOF at a clean end of stream.
func ReadColumnarBatch(r io.Reader, cb *ColumnarBatch, lim ColumnarLimits) error {
	return kdd.ReadColumnarBatch(r, cb, lim)
}

// WriteColumnarBatch writes records as one columnar frame.
func WriteColumnarBatch(w io.Writer, records []Record, opts ColumnarWriteOptions) error {
	return kdd.WriteColumnarBatch(w, records, opts)
}

// DefaultModelConfig returns the GHSOM configuration used by the paper
// reproduction experiments (tau1=0.6, tau2=0.03).
func DefaultModelConfig() ModelConfig { return core.DefaultConfig() }

// TrainModel trains a raw GHSOM on already-encoded vectors. Most callers
// want TrainPipeline instead, which handles encoding and scaling.
func TrainModel(data [][]float64, cfg ModelConfig) (*Model, error) {
	return core.Train(data, cfg)
}

// GenerateTraffic synthesizes a KDD-99-style trace (see GeneratorConfig
// and the scenario constructors).
func GenerateTraffic(cfg GeneratorConfig) ([]Record, error) {
	return trafficgen.Generate(cfg)
}

// KDD99Scenario returns the DoS-heavy headline scenario (~50k records).
func KDD99Scenario(seed int64) GeneratorConfig { return trafficgen.KDD99Like(seed) }

// SmallScenario returns a fast scenario (~5k records) for tests, examples
// and quickstarts.
func SmallScenario(seed int64) GeneratorConfig { return trafficgen.Small(seed) }

// HardScenario returns the high-noise, R2L/U2R-heavy stress scenario.
func HardScenario(seed int64) GeneratorConfig { return trafficgen.HardMix(seed) }

// CategoryOf maps a KDD label to its category.
func CategoryOf(label string) Category { return kdd.CategoryOf(label) }
