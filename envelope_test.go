package ghsom

import (
	"bytes"
	"testing"
)

// TestEnvelopeV3RoundTripBitIdentical pins the binary envelope contract:
// Save → LoadPipeline → Save produces identical bytes, and the loaded
// pipeline classifies identically.
func TestEnvelopeV3RoundTripBitIdentical(t *testing.T) {
	recs := testRecords(t)
	pipe, err := TrainPipeline(recs, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pipe.EnvelopeVersion() != 3 {
		t.Fatalf("fresh pipeline envelope version = %d, want 3", pipe.EnvelopeVersion())
	}
	var first bytes.Buffer
	if err := pipe.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.EnvelopeVersion() != 3 {
		t.Fatalf("loaded envelope version = %d, want 3", loaded.EnvelopeVersion())
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("binary envelope round trip not bit-identical (%d vs %d bytes)",
			first.Len(), second.Len())
	}
	for i := 0; i < len(recs); i += 131 {
		p1, err := pipe.Detect(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		p2, err := loaded.Detect(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatalf("record %d verdict differs after v3 round trip: %+v vs %+v", i, p1, p2)
		}
	}
	// The rebuilt tree must also match the original structurally.
	if got, want := loaded.Model().Stats(), pipe.Model().Stats(); got.Maps != want.Maps ||
		got.Units != want.Units || got.MaxDepth != want.MaxDepth {
		t.Fatalf("rebuilt tree stats %+v, want %+v", got, want)
	}
}

// TestLoadPipelineVersion2JSONCompat verifies the legacy JSON envelope
// still loads (compile-on-load) and classifies identically to the binary
// form.
func TestLoadPipelineVersion2JSONCompat(t *testing.T) {
	recs := testRecords(t)
	pipe, err := TrainPipeline(recs, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pipe.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.EnvelopeVersion() != 2 {
		t.Fatalf("JSON envelope version = %d, want 2", loaded.EnvelopeVersion())
	}
	if loaded.Compiled() == nil {
		t.Fatal("JSON-loaded pipeline has no compiled model")
	}
	for i := 0; i < len(recs); i += 173 {
		p1, err := pipe.Detect(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		p2, err := loaded.Detect(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatalf("record %d verdict differs after JSON load: %+v vs %+v", i, p1, p2)
		}
	}
}

// TestLoadPipelineRejectsCorruptBinary walks truncations and byte
// mutations of a valid v3 envelope: every outcome must be an error or a
// loadable, classifiable pipeline — never a panic.
func TestLoadPipelineRejectsCorruptBinary(t *testing.T) {
	recs := testRecords(t)
	pipe, err := TrainPipeline(recs, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pipe.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut += 997 {
		if _, err := LoadPipeline(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for pos := 0; pos < len(raw); pos += 1499 {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x5a
		loaded, err := LoadPipeline(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		if _, err := loaded.Detect(&recs[0]); err != nil {
			// A mutated envelope that loads may legitimately reject
			// records (e.g. a flipped service name); it must not panic.
			continue
		}
	}
}
