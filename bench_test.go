package ghsom

// Benchmark harness: one target per table and figure of the evaluation
// (see DESIGN.md section 4 and EXPERIMENTS.md). Each benchmark runs the
// corresponding eval runner on the small scenario so `go test -bench=.`
// finishes in minutes; cmd/experiments reproduces the full-scale numbers
// on the kdd99 scenario. Quality metrics are attached to the benchmark
// output via ReportMetric, so the bench log doubles as a results table.

import (
	"runtime"
	"sync"
	"testing"

	"ghsom/internal/anomaly"
	"ghsom/internal/eval"
	"ghsom/internal/trafficgen"
)

// benchState caches the generated dataset across benchmarks.
var benchState struct {
	once sync.Once
	enc  *eval.Encoded
	ds   eval.Dataset
	err  error
}

func benchEncoded(b *testing.B) *eval.Encoded {
	b.Helper()
	benchState.once.Do(func() {
		ds, err := eval.MakeDataset(trafficgen.Small(1), 0.67, 1)
		if err != nil {
			benchState.err = err
			return
		}
		benchState.ds = ds
		benchState.enc, benchState.err = eval.Encode(ds)
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
	return benchState.enc
}

// BenchmarkTableT1DatasetGeneration regenerates the T1 dataset: the
// synthetic trace plus the 41-feature derivation.
func BenchmarkTableT1DatasetGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		records, err := trafficgen.Generate(trafficgen.Small(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(records)), "records")
	}
}

// BenchmarkTableT2Comparison runs the headline GHSOM vs SOM vs k-means vs
// threshold comparison.
func BenchmarkTableT2Comparison(b *testing.B) {
	enc := benchEncoded(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := eval.Comparison(enc, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Accuracy, "ghsom-acc")
		b.ReportMetric(results[0].AUC, "ghsom-auc")
	}
}

// BenchmarkTableT3PerClass runs the per-category detection table.
func BenchmarkTableT3PerClass(b *testing.B) {
	enc := benchEncoded(b)
	_, _, det, err := eval.RunGHSOM(enc, eval.DefaultModelConfig(1), anomaly.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.PerClass(enc, det)
		b.ReportMetric(res.Recall["dos"], "dos-recall")
		b.ReportMetric(res.Binary.DetectionRate(), "detect-rate")
	}
}

// BenchmarkTableT4TauSweep runs the (tau1, tau2) structure sweep (reduced
// grid; cmd/experiments runs the full 3x3).
func BenchmarkTableT4TauSweep(b *testing.B) {
	enc := benchEncoded(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.TauSweep(enc, []float64{0.7, 0.4}, []float64{0.1, 0.02}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[len(rows)-1].Units), "units-widest")
	}
}

// BenchmarkFigureF1Convergence trains with growth tracing and reports the
// root map's final mean-unit MQE (the F1 series endpoint).
func BenchmarkFigureF1Convergence(b *testing.B) {
	enc := benchEncoded(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace, model, err := eval.ConvergenceTrace(enc, 1)
		if err != nil {
			b.Fatal(err)
		}
		events := trace.ForNode(model.Root().ID)
		b.ReportMetric(events[len(events)-1].MeanUnitMQE, "final-mqe")
	}
}

// BenchmarkFigureF2ROC computes the GHSOM-vs-SOM ROC curves and reports
// both AUCs.
func BenchmarkFigureF2ROC(b *testing.B) {
	enc := benchEncoded(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := eval.ROCCurves(enc, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(curves[0].AUC, "ghsom-auc")
		b.ReportMetric(curves[1].AUC, "som-auc")
	}
}

// BenchmarkFigureF3Growth reports the root map's growth (unit count per
// iteration endpoint) — the F3 series.
func BenchmarkFigureF3Growth(b *testing.B) {
	enc := benchEncoded(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace, model, err := eval.ConvergenceTrace(enc, 1)
		if err != nil {
			b.Fatal(err)
		}
		events := trace.ForNode(model.Root().ID)
		last := events[len(events)-1]
		b.ReportMetric(float64(last.Rows*last.Cols), "root-units")
		b.ReportMetric(float64(len(events)-1), "grow-iters")
	}
}

// BenchmarkFigureF4Scalability runs the train-time/throughput scaling
// points.
func BenchmarkFigureF4Scalability(b *testing.B) {
	enc := benchEncoded(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.Scalability(enc, []int{1000, 2000, 4000}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].ClassifyPerSec, "classify/s")
	}
}

// BenchmarkAblationA1Novelty runs the unseen-attack holdout.
func BenchmarkAblationA1Novelty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.NoveltyHoldout(5, 1, "smurf", "satan", "warezclient")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.UnseenDR, "unseen-dr")
		b.ReportMetric(res.FPR, "fpr")
	}
}

// BenchmarkAblationA2BatchVsOnline runs the training-rule ablation.
func BenchmarkAblationA2BatchVsOnline(b *testing.B) {
	enc := benchEncoded(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := eval.BatchVsOnline(enc, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Accuracy, "online-acc")
		b.ReportMetric(results[1].Accuracy, "batch-acc")
	}
}

// BenchmarkAblationA3Routing runs the effective-codebook vs all-units
// routing ablation.
func BenchmarkAblationA3Routing(b *testing.B) {
	enc := benchEncoded(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := eval.RoutingAblation(enc, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Accuracy, "trained-acc")
		b.ReportMetric(results[1].Accuracy, "allunits-acc")
	}
}

// BenchmarkAblationA4Margin runs the novelty-margin sensitivity sweep.
func BenchmarkAblationA4Margin(b *testing.B) {
	enc := benchEncoded(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.MarginSweep(enc, []float64{1.0, 1.5, 3.0}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].FPR, "fpr@1.0")
		b.ReportMetric(rows[len(rows)-1].FPR, "fpr@3.0")
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkTrainGHSOM measures end-to-end GHSOM training on the capped
// training set.
func BenchmarkTrainGHSOM(b *testing.B) {
	enc := benchEncoded(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := eval.RunGHSOM(enc, eval.DefaultModelConfig(1), anomaly.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteRecord measures hierarchical BMU routing of one record.
func BenchmarkRouteRecord(b *testing.B) {
	enc := benchEncoded(b)
	_, model, _, err := eval.RunGHSOM(enc, eval.DefaultModelConfig(1), anomaly.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.RouteTrained(enc.TestX[i%len(enc.TestX)])
	}
}

// BenchmarkDetectRecord measures the full per-record verdict (routing +
// label + novelty decision).
func BenchmarkDetectRecord(b *testing.B) {
	enc := benchEncoded(b)
	_, _, det, err := eval.RunGHSOM(enc, eval.DefaultModelConfig(1), anomaly.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Classify(enc.TestX[i%len(enc.TestX)])
	}
}

// BenchmarkPipelineDetect measures the user-facing path: raw record ->
// encode -> scale -> verdict.
func BenchmarkPipelineDetect(b *testing.B) {
	enc := benchEncoded(b)
	_ = enc
	records := benchState.ds.Train
	pipe, err := TrainPipeline(records, DefaultPipelineConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Detect(&records[i%len(records)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel-scaling benchmarks ---

// benchParallelConfig returns the small-scenario pipeline config with
// every layer's Parallelism knob at p.
func benchParallelConfig(p int) PipelineConfig {
	cfg := DefaultPipelineConfig()
	cfg.Parallelism = p
	cfg.Model.Parallelism = p
	cfg.Detector.Parallelism = p
	return cfg
}

// benchParallelism is the worker sweep: 1 (serial baseline), 4 (the
// speedup target), and 0 (GOMAXPROCS). On multi-core hardware DetectAll
// at P=4 should run >= 2x the records/sec of P=1; on a single-core
// runner the three points collapse to the same throughput.
var benchParallelism = []struct {
	name string
	p    int
}{
	{"P1", 1},
	{"P4", 4},
	{"Pmax", 0},
}

// BenchmarkDetectAll measures batch classification throughput — the
// inference hot path — at each Parallelism setting, reporting records/sec
// and allocations per record (DetectAll allocates the prediction slice
// per call, so its floor is that one slice amortized over the batch).
func BenchmarkDetectAll(b *testing.B) {
	benchEncoded(b)
	records := benchState.ds.Test
	for _, pc := range benchParallelism {
		b.Run(pc.name, func(b *testing.B) {
			pipe, err := TrainPipeline(benchState.ds.Train, benchParallelConfig(pc.p))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipe.DetectAll(records); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			recPerSec := float64(len(records)) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(recPerSec, "records/sec")
		})
	}
}

// BenchmarkDetectBatch measures the zero-allocation batch dataplane at
// each Parallelism setting: records/sec and allocs/record in steady
// state, with the output slice reused across iterations. The allocs/op
// figure (per ReportAllocs) is the PR's acceptance gate: after the first
// warm-up iteration the whole batch must cost only a bounded handful of
// allocations (worker goroutines + pool churn), i.e. ~0 per record.
func BenchmarkDetectBatch(b *testing.B) {
	benchEncoded(b)
	records := benchState.ds.Test
	for _, pc := range benchParallelism {
		b.Run(pc.name, func(b *testing.B) {
			pipe, err := TrainPipeline(benchState.ds.Train, benchParallelConfig(pc.p))
			if err != nil {
				b.Fatal(err)
			}
			out := make([]Prediction, len(records))
			// Warm the arenas so the measured loop is steady state.
			if _, err := pipe.DetectBatch(records, out); err != nil {
				b.Fatal(err)
			}
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pipe.DetectBatch(records, out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			recs := float64(len(records)) * float64(b.N)
			b.ReportMetric(recs/b.Elapsed().Seconds(), "records/sec")
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/recs, "allocs/record")
		})
	}
}

// BenchmarkTrainPipeline measures end-to-end pipeline training (encoding,
// scaling, GHSOM growth with parallel sibling subtrees, detector fitting)
// at each Parallelism setting, reporting training records/sec.
func BenchmarkTrainPipeline(b *testing.B) {
	benchEncoded(b)
	records := benchState.ds.Train
	for _, pc := range benchParallelism {
		b.Run(pc.name, func(b *testing.B) {
			cfg := benchParallelConfig(pc.p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := TrainPipeline(records, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			recPerSec := float64(len(records)) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(recPerSec, "records/sec")
		})
	}
}
