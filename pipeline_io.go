package ghsom

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"ghsom/internal/anomaly"
	"ghsom/internal/core"
	"ghsom/internal/kdd"
	"ghsom/internal/preprocess"
)

// pipelineJSON is the legacy JSON envelope for a trained pipeline
// (versions 1 and 2).
//
// Version history:
//
//	1 — JSON: encoder vocabulary, scaler state, model, detector.
//	2 — JSON: adds the pipeline-level training configuration
//	    (trainCapPerLabel, seed, parallelism), which version 1 silently
//	    dropped: a loaded pipeline reverted to zero values, so a retrain
//	    from the same config file would not reproduce the original model.
//	3 — binary: a single length-prefixed blob carrying the compiled
//	    model (weight arena + flat tables), scaler state, encoder
//	    vocabulary, pipeline configuration, and detector cell table.
//	    Round-trips bit-identically; versions 1 and 2 still load, with
//	    the model compiled on load.
type pipelineJSON struct {
	Version      int       `json:"version"`
	LogTransform bool      `json:"logTransform"`
	Services     []string  `json:"services"`
	ScalerMin    []float64 `json:"scalerMin"`
	ScalerSpan   []float64 `json:"scalerSpan"`
	// TrainCapPerLabel, Seed, and Parallelism mirror the PipelineConfig
	// fields of the same names (version >= 2; absent in version 1).
	TrainCapPerLabel int             `json:"trainCapPerLabel,omitempty"`
	Seed             int64           `json:"seed,omitempty"`
	Parallelism      int             `json:"parallelism,omitempty"`
	Model            json.RawMessage `json:"model"`
	Detector         anomaly.State   `json:"detector"`
}

const (
	pipelineVersion     = 3
	pipelineJSONVersion = 2
)

// envMagic opens a binary v3 envelope. The loader sniffs it to tell the
// binary format from the legacy JSON envelopes (which start with '{').
var envMagic = [8]byte{'G', 'H', 'S', 'O', 'M', 'P', 'V', '3'}

// Caps applied while reading a binary envelope, so corrupt or hostile
// input fails with an error before any proportional allocation.
const (
	envMaxServices   = 1 << 20
	envMaxServiceLen = 1 << 16
	envMaxDim        = 1 << 20
	envMaxModelBytes = 1 << 30
	envMaxDetBytes   = 1 << 28
)

// Save writes the trained pipeline as a binary envelope (version 3): one
// length-prefixed blob carrying the compiled model arena and tables, the
// encoder vocabulary, the scaler state, the pipeline configuration, and
// the detector cell table. The output is deterministic — identical
// pipelines produce identical bytes — and round-trips bit-identically
// through LoadPipeline. The embedded model blob is written with its big
// tables 8-byte aligned relative to the envelope start, so a file whose
// envelope begins at offset 0 loads zero-copy through LoadPipelineFile
// in mapped mode. Use SaveJSON for the legacy JSON envelope.
func (p *Pipeline) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(envMagic[:]); err != nil {
		return fmt.Errorf("ghsom: write envelope: %w", err)
	}
	le := binary.LittleEndian
	write := func(v any) error { return binary.Write(bw, le, v) }

	flags := uint8(0)
	if p.encoder.Config().LogTransform {
		flags = 1
	}
	if err := write(flags); err != nil {
		return fmt.Errorf("ghsom: write envelope flags: %w", err)
	}
	for _, v := range []int64{int64(p.cfg.TrainCapPerLabel), p.cfg.Seed, int64(p.cfg.Parallelism)} {
		if err := write(v); err != nil {
			return fmt.Errorf("ghsom: write envelope config: %w", err)
		}
	}
	services := p.encoder.Services()
	if err := write(uint32(len(services))); err != nil {
		return fmt.Errorf("ghsom: write envelope services: %w", err)
	}
	for _, s := range services {
		if err := write(uint32(len(s))); err != nil {
			return fmt.Errorf("ghsom: write envelope services: %w", err)
		}
		if _, err := bw.WriteString(s); err != nil {
			return fmt.Errorf("ghsom: write envelope services: %w", err)
		}
	}
	min, span := p.scaler.State()
	if err := write(uint32(len(min))); err != nil {
		return fmt.Errorf("ghsom: write envelope scaler: %w", err)
	}
	for _, v := range [][]float64{min, span} {
		if err := write(v); err != nil {
			return fmt.Errorf("ghsom: write envelope scaler: %w", err)
		}
	}

	// The model blob starts after the fixed header (magic 8 + flags 1 +
	// config 24 + service count 4 + scaler dim 4 + model length 8 = 49
	// bytes), the service strings, and the two scaler tables; handing
	// WriteBinaryAt that offset lets it pad the blob so the weight arena
	// lands 8-byte aligned in the file.
	blobOff := int64(49)
	for _, s := range services {
		blobOff += int64(4 + len(s))
	}
	blobOff += int64(16 * len(min))
	var modelBlob bytes.Buffer
	if err := p.compiled.WriteBinaryAt(&modelBlob, blobOff); err != nil {
		return fmt.Errorf("ghsom: write envelope model: %w", err)
	}
	if err := write(uint64(modelBlob.Len())); err != nil {
		return fmt.Errorf("ghsom: write envelope model: %w", err)
	}
	if _, err := bw.Write(modelBlob.Bytes()); err != nil {
		return fmt.Errorf("ghsom: write envelope model: %w", err)
	}

	detJSON, err := json.Marshal(p.detector.State())
	if err != nil {
		return fmt.Errorf("ghsom: encode detector state: %w", err)
	}
	if err := write(uint32(len(detJSON))); err != nil {
		return fmt.Errorf("ghsom: write envelope detector: %w", err)
	}
	if _, err := bw.Write(detJSON); err != nil {
		return fmt.Errorf("ghsom: write envelope detector: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ghsom: write envelope: %w", err)
	}
	return nil
}

// SaveJSON writes the trained pipeline as the legacy JSON envelope
// (version 2) — larger and slower to load than the binary envelope, but
// human-inspectable and consumable by external tooling.
func (p *Pipeline) SaveJSON(w io.Writer) error {
	model := p.Model() // rebuilds the pointer tree if loading deferred it
	if model == nil {
		return fmt.Errorf("ghsom: save model: no pointer-tree model")
	}
	var modelBuf bytes.Buffer
	if err := model.Save(&modelBuf); err != nil {
		return fmt.Errorf("ghsom: save model: %w", err)
	}
	min, span := p.scaler.State()
	env := pipelineJSON{
		Version:          pipelineJSONVersion,
		LogTransform:     p.encoder.Config().LogTransform,
		Services:         p.encoder.Services(),
		ScalerMin:        min,
		ScalerSpan:       span,
		TrainCapPerLabel: p.cfg.TrainCapPerLabel,
		Seed:             p.cfg.Seed,
		Parallelism:      p.cfg.Parallelism,
		Model:            bytes.TrimSpace(modelBuf.Bytes()),
		Detector:         p.detector.State(),
	}
	if err := json.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("ghsom: encode pipeline: %w", err)
	}
	return nil
}

// LoadPipeline reads a pipeline previously written by Save (binary
// envelope v3) or SaveJSON / older releases' Save (JSON envelopes v1 and
// v2) — the format is sniffed from the first bytes. JSON envelopes carry
// the pointer-tree model and are compiled on load; the binary envelope
// carries the compiled model directly and the tree is rebuilt from it.
// Either way the loaded pipeline serves on the compiled dataplane and
// classifies identically to the pipeline that was saved.
//
// Note the persisted Parallelism is the knob the pipeline was trained
// with on the training machine — a model trained serially will serve
// serially after loading. Call SetParallelism (0 = GOMAXPROCS) to retune
// batch inference for the serving machine, as the CLIs do.
func LoadPipeline(r io.Reader) (*Pipeline, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(envMagic))
	if err == nil && bytes.Equal(head, envMagic[:]) {
		return loadPipelineBinary(br)
	}
	return loadPipelineJSON(br)
}

// loadPipelineJSON reads the legacy v1/v2 JSON envelope and compiles the
// model on load.
func loadPipelineJSON(r io.Reader) (*Pipeline, error) {
	var env pipelineJSON
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("ghsom: decode pipeline: %w", err)
	}
	if env.Version < 1 || env.Version > pipelineJSONVersion {
		return nil, fmt.Errorf("ghsom: unsupported JSON pipeline version %d, want 1..%d (version %d is the binary envelope)",
			env.Version, pipelineJSONVersion, pipelineVersion)
	}
	model, err := core.Load(bytes.NewReader(env.Model))
	if err != nil {
		return nil, fmt.Errorf("ghsom: load model: %w", err)
	}
	return assemblePipeline(pipelineParts{
		version:          env.Version,
		logTransform:     env.LogTransform,
		services:         env.Services,
		scalerMin:        env.ScalerMin,
		scalerSpan:       env.ScalerSpan,
		trainCapPerLabel: env.TrainCapPerLabel,
		seed:             env.Seed,
		parallelism:      env.Parallelism,
		model:            model,
		compiled:         core.Compile(model),
		detector:         env.Detector,
	})
}

// pipelineParts is the format-independent bundle assemblePipeline builds
// a Pipeline from.
type pipelineParts struct {
	version          int
	logTransform     bool
	services         []string
	scalerMin        []float64
	scalerSpan       []float64
	trainCapPerLabel int
	seed             int64
	parallelism      int
	model            *core.GHSOM
	compiled         *core.Compiled
	detector         anomaly.State
}

// assemblePipeline validates the cross-component invariants (matching
// dimensions) and wires the detector onto the compiled dataplane.
func assemblePipeline(parts pipelineParts) (*Pipeline, error) {
	scaler, err := preprocess.NewMinMaxScalerFromState(parts.scalerMin, parts.scalerSpan)
	if err != nil {
		return nil, fmt.Errorf("ghsom: load scaler: %w", err)
	}
	encoder := kdd.NewEncoderFromServices(parts.services, kdd.EncoderConfig{LogTransform: parts.logTransform})
	if encoder.Dim() != scaler.Dim() {
		return nil, fmt.Errorf("ghsom: encoder dim %d does not match scaler dim %d", encoder.Dim(), scaler.Dim())
	}
	if scaler.Dim() != parts.compiled.Dim() {
		return nil, fmt.Errorf("ghsom: scaler dim %d does not match model dim %d", scaler.Dim(), parts.compiled.Dim())
	}
	det, err := anomaly.FromState(anomaly.NewGHSOMQuantizer(parts.compiled), parts.detector)
	if err != nil {
		return nil, fmt.Errorf("ghsom: load detector: %w", err)
	}
	return &Pipeline{
		encoder:    encoder,
		scaler:     scaler,
		model:      parts.model,
		compiled:   parts.compiled,
		detector:   det,
		envVersion: parts.version,
		cfg: PipelineConfig{
			Model:            parts.compiled.Config(),
			Detector:         parts.detector.Config,
			LogTransform:     parts.logTransform,
			TrainCapPerLabel: parts.trainCapPerLabel,
			Seed:             parts.seed,
			Parallelism:      parts.parallelism,
		},
	}, nil
}

// LoadPipelineFile loads a pipeline envelope from a file. With mapped
// false it is LoadPipeline over the opened file. With mapped true the
// file is mapped read-only (core.OpenMapping) and, for a binary v3
// envelope written by Save, the model's weight arena and serialized unit
// tables become direct views of the mapping: loading copies no arena,
// touches no weight page until routing first reads it, and every process
// serving the same file shares one physical copy through the page cache.
// Classification is byte-identical to a stream load. The returned
// pipeline owns the mapping; release it with Close only when the
// pipeline is retired — the model reads the mapped pages for as long as
// it serves. Legacy JSON envelopes and pre-alignment binary envelopes
// load correctly in mapped mode too, falling back to heap copies (and
// then need no Close).
func LoadPipelineFile(path string, mapped bool) (*Pipeline, error) {
	if !mapped {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("ghsom: open pipeline: %w", err)
		}
		defer f.Close()
		return LoadPipeline(f)
	}
	m, err := core.OpenMapping(path)
	if err != nil {
		return nil, fmt.Errorf("ghsom: map pipeline: %w", err)
	}
	p, err := loadPipelineMapped(m.Bytes())
	if err != nil {
		m.Close()
		return nil, err
	}
	if p.MappedBytes() > 0 {
		p.mapping = m
	} else {
		// Nothing in the pipeline views the mapping (JSON envelope, or a
		// legacy blob whose tables landed unaligned): release it here so
		// the caller need not Close.
		m.Close()
	}
	return p, nil
}

// loadPipelineMapped parses an envelope held fully in memory, loading
// the model blob through the zero-copy bytes reader. Validation mirrors
// loadPipelineBinary's; the incremental-read defenses are unnecessary
// here because every claimed length is bounds-checked against the
// mapping before any proportional allocation.
func loadPipelineMapped(data []byte) (*Pipeline, error) {
	if len(data) < len(envMagic) || !bytes.Equal(data[:len(envMagic)], envMagic[:]) {
		return loadPipelineJSON(bytes.NewReader(data))
	}
	cur := &envCursor{data: data, off: len(envMagic)}
	flags, err := cur.u8("envelope flags")
	if err != nil {
		return nil, err
	}
	if flags > 1 {
		return nil, fmt.Errorf("ghsom: unknown envelope flags %#x", flags)
	}
	var cap64, seed, par int64
	for _, v := range []*int64{&cap64, &seed, &par} {
		b, err := cur.bytes(8, "envelope config")
		if err != nil {
			return nil, err
		}
		*v = int64(binary.LittleEndian.Uint64(b))
	}
	nServices, err := cur.u32("envelope services")
	if err != nil {
		return nil, err
	}
	if nServices > envMaxServices {
		return nil, fmt.Errorf("ghsom: envelope has %d services, cap %d", nServices, envMaxServices)
	}
	services := make([]string, 0, min(int(nServices), 4096))
	for i := 0; i < int(nServices); i++ {
		slen, err := cur.u32("envelope service")
		if err != nil {
			return nil, err
		}
		if slen > envMaxServiceLen {
			return nil, fmt.Errorf("ghsom: envelope service %d of %d bytes exceeds cap", i, slen)
		}
		b, err := cur.bytes(int(slen), "envelope service")
		if err != nil {
			return nil, err
		}
		services = append(services, string(b))
	}
	dim, err := cur.u32("envelope scaler")
	if err != nil {
		return nil, err
	}
	if dim > envMaxDim {
		return nil, fmt.Errorf("ghsom: envelope scaler dim %d exceeds cap %d", dim, envMaxDim)
	}
	scalerMin, err := cur.floats(int(dim), "envelope scaler")
	if err != nil {
		return nil, err
	}
	scalerSpan, err := cur.floats(int(dim), "envelope scaler")
	if err != nil {
		return nil, err
	}
	mb, err := cur.bytes(8, "envelope model")
	if err != nil {
		return nil, err
	}
	modelLen := binary.LittleEndian.Uint64(mb)
	if modelLen > envMaxModelBytes {
		return nil, fmt.Errorf("ghsom: envelope model of %d bytes exceeds cap %d", modelLen, envMaxModelBytes)
	}
	window, err := cur.bytes(int(modelLen), "envelope model")
	if err != nil {
		return nil, err
	}
	compiled, err := core.ReadCompiledBinaryBytes(window, true)
	if err != nil {
		return nil, fmt.Errorf("ghsom: load model: %w", err)
	}
	detLen, err := cur.u32("envelope detector")
	if err != nil {
		return nil, err
	}
	if detLen > envMaxDetBytes {
		return nil, fmt.Errorf("ghsom: envelope detector of %d bytes exceeds cap %d", detLen, envMaxDetBytes)
	}
	detJSON, err := cur.bytes(int(detLen), "envelope detector")
	if err != nil {
		return nil, err
	}
	var det anomaly.State
	if err := json.Unmarshal(detJSON, &det); err != nil {
		return nil, fmt.Errorf("ghsom: decode detector state: %w", err)
	}
	return assemblePipeline(pipelineParts{
		version:          pipelineVersion,
		logTransform:     flags == 1,
		services:         services,
		scalerMin:        scalerMin,
		scalerSpan:       scalerSpan,
		trainCapPerLabel: int(cap64),
		seed:             seed,
		parallelism:      int(par),
		// model stays nil — rebuilt lazily by Model(), copying the arena
		// only if a caller actually asks for the pointer tree.
		compiled: compiled,
		detector: det,
	})
}

// envCursor walks a fully-resident envelope with bounds-checked reads.
type envCursor struct {
	data []byte
	off  int
}

func (c *envCursor) bytes(n int, what string) ([]byte, error) {
	if n < 0 || len(c.data)-c.off < n {
		return nil, fmt.Errorf("ghsom: read %s: envelope truncated at byte %d", what, c.off)
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *envCursor) u8(what string) (uint8, error) {
	b, err := c.bytes(1, what)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *envCursor) u32(what string) (uint32, error) {
	b, err := c.bytes(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *envCursor) floats(n int, what string) ([]float64, error) {
	b, err := c.bytes(n*8, what)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// readEnvFloats reads n little-endian float64s, growing storage only as
// payload actually arrives (io.ReadAll doubles as data comes in), so a
// corrupt length field cannot force a large allocation from a short
// stream.
func readEnvFloats(r io.Reader, n int) ([]float64, error) {
	raw, err := io.ReadAll(io.LimitReader(r, int64(n)*8))
	if err != nil {
		return nil, err
	}
	if len(raw) != n*8 {
		return nil, io.ErrUnexpectedEOF
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

// loadPipelineBinary reads the v3 binary envelope. Like the compiled
// model reader, every variable-size section is read incrementally so
// attacker-claimed lengths cannot force proportional allocations.
func loadPipelineBinary(r *bufio.Reader) (*Pipeline, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("ghsom: read envelope magic: %w", err)
	}
	le := binary.LittleEndian
	read := func(v any) error { return binary.Read(r, le, v) }

	var flags uint8
	if err := read(&flags); err != nil {
		return nil, fmt.Errorf("ghsom: read envelope flags: %w", err)
	}
	if flags > 1 {
		return nil, fmt.Errorf("ghsom: unknown envelope flags %#x", flags)
	}
	var cap64, seed, par int64
	for _, v := range []*int64{&cap64, &seed, &par} {
		if err := read(v); err != nil {
			return nil, fmt.Errorf("ghsom: read envelope config: %w", err)
		}
	}
	var nServices uint32
	if err := read(&nServices); err != nil {
		return nil, fmt.Errorf("ghsom: read envelope services: %w", err)
	}
	if nServices > envMaxServices {
		return nil, fmt.Errorf("ghsom: envelope has %d services, cap %d", nServices, envMaxServices)
	}
	services := make([]string, 0, min(int(nServices), 4096))
	for i := 0; i < int(nServices); i++ {
		var slen uint32
		if err := read(&slen); err != nil {
			return nil, fmt.Errorf("ghsom: read envelope service %d: %w", i, err)
		}
		if slen > envMaxServiceLen {
			return nil, fmt.Errorf("ghsom: envelope service %d of %d bytes exceeds cap", i, slen)
		}
		buf := make([]byte, slen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("ghsom: read envelope service %d: %w", i, err)
		}
		services = append(services, string(buf))
	}
	var dim uint32
	if err := read(&dim); err != nil {
		return nil, fmt.Errorf("ghsom: read envelope scaler: %w", err)
	}
	if dim > envMaxDim {
		return nil, fmt.Errorf("ghsom: envelope scaler dim %d exceeds cap %d", dim, envMaxDim)
	}
	scalerMin, err := readEnvFloats(r, int(dim))
	if err != nil {
		return nil, fmt.Errorf("ghsom: read envelope scaler: %w", err)
	}
	scalerSpan, err := readEnvFloats(r, int(dim))
	if err != nil {
		return nil, fmt.Errorf("ghsom: read envelope scaler: %w", err)
	}
	var modelLen uint64
	if err := read(&modelLen); err != nil {
		return nil, fmt.Errorf("ghsom: read envelope model: %w", err)
	}
	if modelLen > envMaxModelBytes {
		return nil, fmt.Errorf("ghsom: envelope model of %d bytes exceeds cap %d", modelLen, envMaxModelBytes)
	}
	modelSection := io.LimitReader(r, int64(modelLen))
	compiled, err := core.ReadCompiledBinary(modelSection)
	if err != nil {
		return nil, fmt.Errorf("ghsom: load model: %w", err)
	}
	// The model parser consumes exactly the blob, but its internal
	// buffering may leave a remainder on the section reader; drain it so
	// the detector section starts aligned.
	if _, err := io.Copy(io.Discard, modelSection); err != nil {
		return nil, fmt.Errorf("ghsom: skip envelope model: %w", err)
	}
	var detLen uint32
	if err := read(&detLen); err != nil {
		return nil, fmt.Errorf("ghsom: read envelope detector: %w", err)
	}
	if detLen > envMaxDetBytes {
		return nil, fmt.Errorf("ghsom: envelope detector of %d bytes exceeds cap %d", detLen, envMaxDetBytes)
	}
	detJSON, err := io.ReadAll(io.LimitReader(r, int64(detLen)))
	if err != nil {
		return nil, fmt.Errorf("ghsom: read envelope detector: %w", err)
	}
	if len(detJSON) != int(detLen) {
		return nil, fmt.Errorf("ghsom: read envelope detector: %w", io.ErrUnexpectedEOF)
	}
	var det anomaly.State
	if err := json.Unmarshal(detJSON, &det); err != nil {
		return nil, fmt.Errorf("ghsom: decode detector state: %w", err)
	}
	return assemblePipeline(pipelineParts{
		version:          pipelineVersion,
		logTransform:     flags == 1,
		services:         services,
		scalerMin:        scalerMin,
		scalerSpan:       scalerSpan,
		trainCapPerLabel: int(cap64),
		seed:             seed,
		parallelism:      int(par),
		// model stays nil: the pointer tree is rebuilt lazily on the first
		// Model() call, so loading never copies the weight arena.
		compiled: compiled,
		detector: det,
	})
}
