package ghsom

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ghsom/internal/anomaly"
	"ghsom/internal/core"
	"ghsom/internal/kdd"
	"ghsom/internal/preprocess"
)

// pipelineJSON is the on-disk envelope for a trained pipeline.
type pipelineJSON struct {
	Version      int             `json:"version"`
	LogTransform bool            `json:"logTransform"`
	Services     []string        `json:"services"`
	ScalerMin    []float64       `json:"scalerMin"`
	ScalerSpan   []float64       `json:"scalerSpan"`
	Model        json.RawMessage `json:"model"`
	Detector     anomaly.State   `json:"detector"`
}

const pipelineVersion = 1

// Save writes the trained pipeline — encoder vocabulary, scaler state,
// GHSOM model, and detector cell table — as a single JSON document.
func (p *Pipeline) Save(w io.Writer) error {
	var modelBuf bytes.Buffer
	if err := p.model.Save(&modelBuf); err != nil {
		return fmt.Errorf("ghsom: save model: %w", err)
	}
	min, span := p.scaler.State()
	env := pipelineJSON{
		Version:      pipelineVersion,
		LogTransform: p.encoder.Config().LogTransform,
		Services:     p.encoder.Services(),
		ScalerMin:    min,
		ScalerSpan:   span,
		Model:        bytes.TrimSpace(modelBuf.Bytes()),
		Detector:     p.detector.State(),
	}
	if err := json.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("ghsom: encode pipeline: %w", err)
	}
	return nil
}

// LoadPipeline reads a pipeline previously written by Save.
func LoadPipeline(r io.Reader) (*Pipeline, error) {
	var env pipelineJSON
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("ghsom: decode pipeline: %w", err)
	}
	if env.Version != pipelineVersion {
		return nil, fmt.Errorf("ghsom: unsupported pipeline version %d, want %d", env.Version, pipelineVersion)
	}
	model, err := core.Load(bytes.NewReader(env.Model))
	if err != nil {
		return nil, fmt.Errorf("ghsom: load model: %w", err)
	}
	scaler, err := preprocess.NewMinMaxScalerFromState(env.ScalerMin, env.ScalerSpan)
	if err != nil {
		return nil, fmt.Errorf("ghsom: load scaler: %w", err)
	}
	encoder := kdd.NewEncoderFromServices(env.Services, kdd.EncoderConfig{LogTransform: env.LogTransform})
	if encoder.Dim() != scaler.Dim() {
		return nil, fmt.Errorf("ghsom: encoder dim %d does not match scaler dim %d", encoder.Dim(), scaler.Dim())
	}
	if scaler.Dim() != model.Dim() {
		return nil, fmt.Errorf("ghsom: scaler dim %d does not match model dim %d", scaler.Dim(), model.Dim())
	}
	det, err := anomaly.FromState(anomaly.GHSOMQuantizer{Model: model}, env.Detector)
	if err != nil {
		return nil, fmt.Errorf("ghsom: load detector: %w", err)
	}
	return &Pipeline{
		encoder:  encoder,
		scaler:   scaler,
		model:    model,
		detector: det,
	}, nil
}
