package ghsom

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ghsom/internal/anomaly"
	"ghsom/internal/core"
	"ghsom/internal/kdd"
	"ghsom/internal/preprocess"
)

// pipelineJSON is the on-disk envelope for a trained pipeline.
//
// Version history:
//
//	1 — encoder vocabulary, scaler state, model, detector.
//	2 — adds the pipeline-level training configuration
//	    (trainCapPerLabel, seed, parallelism), which version 1 silently
//	    dropped: a loaded pipeline reverted to zero values, so a retrain
//	    from the same config file would not reproduce the original model.
type pipelineJSON struct {
	Version      int       `json:"version"`
	LogTransform bool      `json:"logTransform"`
	Services     []string  `json:"services"`
	ScalerMin    []float64 `json:"scalerMin"`
	ScalerSpan   []float64 `json:"scalerSpan"`
	// TrainCapPerLabel, Seed, and Parallelism mirror the PipelineConfig
	// fields of the same names (version >= 2; absent in version 1).
	TrainCapPerLabel int             `json:"trainCapPerLabel,omitempty"`
	Seed             int64           `json:"seed,omitempty"`
	Parallelism      int             `json:"parallelism,omitempty"`
	Model            json.RawMessage `json:"model"`
	Detector         anomaly.State   `json:"detector"`
}

const pipelineVersion = 2

// Save writes the trained pipeline — encoder vocabulary, scaler state,
// pipeline configuration, GHSOM model, and detector cell table — as a
// single JSON document (envelope version 2).
func (p *Pipeline) Save(w io.Writer) error {
	var modelBuf bytes.Buffer
	if err := p.model.Save(&modelBuf); err != nil {
		return fmt.Errorf("ghsom: save model: %w", err)
	}
	min, span := p.scaler.State()
	env := pipelineJSON{
		Version:          pipelineVersion,
		LogTransform:     p.encoder.Config().LogTransform,
		Services:         p.encoder.Services(),
		ScalerMin:        min,
		ScalerSpan:       span,
		TrainCapPerLabel: p.cfg.TrainCapPerLabel,
		Seed:             p.cfg.Seed,
		Parallelism:      p.cfg.Parallelism,
		Model:            bytes.TrimSpace(modelBuf.Bytes()),
		Detector:         p.detector.State(),
	}
	if err := json.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("ghsom: encode pipeline: %w", err)
	}
	return nil
}

// LoadPipeline reads a pipeline previously written by Save. Envelope
// versions 1 and 2 are accepted; version 1 predates config persistence,
// so TrainCapPerLabel, Seed, and Parallelism load as zero values there.
// The loaded pipeline's Config is reassembled from the envelope, the
// model's own serialized configuration, and the detector state, so
// training and inference settings survive the round trip.
//
// Note the persisted Parallelism is the knob the pipeline was trained
// with on the training machine — a model trained serially will serve
// serially after loading. Call SetParallelism (0 = GOMAXPROCS) to retune
// batch inference for the serving machine, as the CLIs do.
func LoadPipeline(r io.Reader) (*Pipeline, error) {
	var env pipelineJSON
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("ghsom: decode pipeline: %w", err)
	}
	if env.Version < 1 || env.Version > pipelineVersion {
		return nil, fmt.Errorf("ghsom: unsupported pipeline version %d, want 1..%d", env.Version, pipelineVersion)
	}
	model, err := core.Load(bytes.NewReader(env.Model))
	if err != nil {
		return nil, fmt.Errorf("ghsom: load model: %w", err)
	}
	scaler, err := preprocess.NewMinMaxScalerFromState(env.ScalerMin, env.ScalerSpan)
	if err != nil {
		return nil, fmt.Errorf("ghsom: load scaler: %w", err)
	}
	encoder := kdd.NewEncoderFromServices(env.Services, kdd.EncoderConfig{LogTransform: env.LogTransform})
	if encoder.Dim() != scaler.Dim() {
		return nil, fmt.Errorf("ghsom: encoder dim %d does not match scaler dim %d", encoder.Dim(), scaler.Dim())
	}
	if scaler.Dim() != model.Dim() {
		return nil, fmt.Errorf("ghsom: scaler dim %d does not match model dim %d", scaler.Dim(), model.Dim())
	}
	det, err := anomaly.FromState(anomaly.NewGHSOMQuantizer(model), env.Detector)
	if err != nil {
		return nil, fmt.Errorf("ghsom: load detector: %w", err)
	}
	return &Pipeline{
		encoder:  encoder,
		scaler:   scaler,
		model:    model,
		detector: det,
		cfg: PipelineConfig{
			Model:            model.Config(),
			Detector:         env.Detector.Config,
			LogTransform:     env.LogTransform,
			TrainCapPerLabel: env.TrainCapPerLabel,
			Seed:             env.Seed,
			Parallelism:      env.Parallelism,
		},
	}, nil
}
