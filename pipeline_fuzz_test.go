package ghsom

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// fuzzSeedEnvelopes trains one small pipeline and renders it as every
// supported envelope generation (v1 JSON, v2 JSON, v3 binary), cached
// across fuzz executions.
var fuzzSeedEnvelopes struct {
	once sync.Once
	v1   []byte
	v2   []byte
	v3   []byte
	err  error
}

func seedEnvelopes() (v1, v2, v3 []byte, err error) {
	s := &fuzzSeedEnvelopes
	s.once.Do(func() {
		recs, err := GenerateTraffic(SmallScenario(5))
		if err != nil {
			s.err = err
			return
		}
		cfg := quickPipelineConfig()
		cfg.TrainCapPerLabel = 200
		pipe, err := TrainPipeline(recs[:1200], cfg)
		if err != nil {
			s.err = err
			return
		}
		var bin, js bytes.Buffer
		if err := pipe.Save(&bin); err != nil {
			s.err = err
			return
		}
		if err := pipe.SaveJSON(&js); err != nil {
			s.err = err
			return
		}
		s.v3 = bin.Bytes()
		s.v2 = js.Bytes()
		// Downgrade the JSON envelope to version 1 (no config fields).
		var env map[string]json.RawMessage
		if err := json.Unmarshal(s.v2, &env); err != nil {
			s.err = err
			return
		}
		env["version"] = json.RawMessage("1")
		delete(env, "trainCapPerLabel")
		delete(env, "seed")
		delete(env, "parallelism")
		s.v1, s.err = json.Marshal(env)
	})
	return s.v1, s.v2, s.v3, s.err
}

// FuzzLoadPipeline asserts that arbitrary truncations and mutations of
// every envelope generation (v1/v2 JSON, v3 binary) never panic the
// loader, and that anything that does load can classify a record without
// panicking.
func FuzzLoadPipeline(f *testing.F) {
	v1, v2, v3, err := seedEnvelopes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v1)
	f.Add(v2)
	f.Add(v3)
	f.Add(v3[:len(v3)/2])
	f.Add(v3[:37])
	f.Add([]byte("GHSOMPV3"))
	f.Add([]byte("{}"))
	f.Add([]byte(""))
	f.Add([]byte(strings.Replace(string(v2), `"version":2`, `"version":7`, 1)))
	mut := append([]byte(nil), v3...)
	if len(mut) > 64 {
		mut[9] ^= 0xff  // flags / config region
		mut[40] ^= 0x10 // services region
	}
	f.Add(mut)

	f.Fuzz(func(t *testing.T, in []byte) {
		pipe, err := LoadPipeline(bytes.NewReader(in))
		if err != nil {
			return
		}
		rec := Record{Protocol: "tcp", Service: "http", Flag: "SF", SrcBytes: 10}
		// A loaded pipeline may reject the record (unknown vocabulary) but
		// must never panic.
		_, _ = pipe.Detect(&rec)
		_ = pipe.Model().Stats()
		_ = pipe.Compiled().Stats()
	})
}
