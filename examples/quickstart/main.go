// Quickstart: generate a small synthetic traffic trace, train a GHSOM
// detection pipeline on part of it, and classify a few connections.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ghsom"
)

func main() {
	// 1. Generate ~5k labeled KDD-99-style records.
	records, err := ghsom.GenerateTraffic(ghsom.SmallScenario(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d records\n", len(records))

	// 2. Train the full pipeline (encoder -> scaler -> GHSOM -> detector)
	// on the first two thirds.
	split := 2 * len(records) / 3
	cfg := ghsom.DefaultPipelineConfig()
	pipe, err := ghsom.TrainPipeline(records[:split], cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := pipe.Model().Stats()
	fmt.Printf("trained GHSOM: %s\n\n", st)

	// 3. Classify held-out records and count verdicts.
	var correct, total int
	var shown int
	for i := split; i < len(records); i++ {
		rec := &records[i]
		verdict, err := pipe.Detect(rec)
		if err != nil {
			log.Fatal(err)
		}
		if verdict.Attack == rec.IsAttack() {
			correct++
		}
		total++
		// Print a few interesting examples.
		if shown < 5 && rec.IsAttack() && verdict.Attack {
			fmt.Printf("detected %-14s as %-14s (cell %s, score %.2f)\n",
				rec.Label, verdict.Label, verdict.Cell, verdict.Score)
			shown++
		}
	}
	fmt.Printf("\nheld-out binary accuracy: %.2f%% (%d/%d)\n",
		100*float64(correct)/float64(total), correct, total)
}
