// Topology explorer: train GHSOMs at several (tau1, tau2) settings and
// render what the parameters do to the hierarchy — map tree, U-matrix of
// the root map, and the per-unit majority labels. This is the
// interpretability story of the GHSOM: the structure itself shows the
// attack taxonomy.
//
// Run with:
//
//	go run ./examples/topology-explore
package main

import (
	"fmt"
	"log"

	"ghsom"
	"ghsom/internal/anomaly"
	"ghsom/internal/kdd"
	"ghsom/internal/preprocess"
	"ghsom/internal/viz"
)

func main() {
	records, err := ghsom.GenerateTraffic(ghsom.SmallScenario(7))
	if err != nil {
		log.Fatal(err)
	}
	enc := kdd.NewEncoder(records, kdd.EncoderConfig{LogTransform: true})
	raw, err := enc.EncodeAll(records)
	if err != nil {
		log.Fatal(err)
	}
	scaler := &preprocess.MinMaxScaler{}
	data, err := preprocess.FitTransform(scaler, raw)
	if err != nil {
		log.Fatal(err)
	}
	labels := kdd.Labels(records)

	for _, p := range []struct{ tau1, tau2 float64 }{
		{0.8, 0.1},  // shallow and coarse
		{0.6, 0.03}, // the paper's operating point
		{0.4, 0.01}, // wide and deep
	} {
		cfg := ghsom.DefaultModelConfig()
		cfg.Tau1, cfg.Tau2 = p.tau1, p.tau2
		model, err := ghsom.TrainModel(data, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== tau1=%.2f tau2=%.3f -> %s ===\n", p.tau1, p.tau2, model.Stats())
		fmt.Print(model.TreeString())

		// Per-unit majority labels on the root map: the class layout.
		root := model.Root()
		votes := make(map[int]map[string]int)
		for i, x := range data {
			bmu, _ := root.Map.BMU(x)
			if votes[bmu] == nil {
				votes[bmu] = make(map[string]int)
			}
			votes[bmu][kdd.CategoryOf(labels[i]).String()]++
		}
		unitLabels := make(map[int]string, len(votes))
		for u, v := range votes {
			best, bestN := ".", 0
			for l, n := range v {
				if n > bestN {
					best, bestN = l, n
				}
			}
			unitLabels[u] = best
		}
		fmt.Println("root-map unit majority categories:")
		fmt.Print(viz.LabelGrid(root.Map.Rows(), root.Map.Cols(), unitLabels))
		fmt.Println("root-map U-matrix (dark = cluster boundary):")
		fmt.Print(viz.Heatmap(root.Map.UMatrix()))
		fmt.Println()
	}

	// Show routing explanations for one attack of each category.
	cfg := ghsom.DefaultModelConfig()
	model, err := ghsom.TrainModel(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	det, err := anomaly.Fit(anomaly.GHSOMQuantizer{Model: model}, data, labels, anomaly.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== routing explanations ===")
	seen := make(map[string]bool)
	for i := range records {
		cat := records[i].Category().String()
		if seen[cat] {
			continue
		}
		seen[cat] = true
		path := model.Path(data[i])
		pred := det.Classify(data[i])
		fmt.Printf("%-8s (%s): path %v -> predicted %s (score %.2f)\n",
			cat, records[i].Label, path, pred.Label, pred.Score)
		if len(seen) == 5 {
			break
		}
	}
}
