// Explainability: for each attack category, detect one record and print
// the features that separate it from its matched prototype — the "why was
// this connection flagged" view an analyst needs before acting on an
// alert. A SYN flood explains itself through count/serror_rate, a
// password-guessing session through failed logins, a warez download
// through guest login and byte volume.
//
// Run with:
//
//	go run ./examples/explain
package main

import (
	"fmt"
	"log"

	"ghsom"
)

func main() {
	records, err := ghsom.GenerateTraffic(ghsom.SmallScenario(5))
	if err != nil {
		log.Fatal(err)
	}
	split := 2 * len(records) / 3
	pipe, err := ghsom.TrainPipeline(records[:split], ghsom.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s\n\n", pipe.Model().Stats())

	seen := make(map[ghsom.Category]bool)
	for i := split; i < len(records); i++ {
		rec := &records[i]
		cat := rec.Category()
		if !rec.IsAttack() || seen[cat] {
			continue
		}
		verdict, err := pipe.Detect(rec)
		if err != nil {
			log.Fatal(err)
		}
		if !verdict.Attack {
			continue
		}
		seen[cat] = true

		fmt.Printf("── %s attack %q detected as %q (score %.2f, novel=%v)\n",
			cat, rec.Label, verdict.Label, verdict.Score, verdict.Novel)
		contribs, err := pipe.Explain(rec, 6)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range contribs {
			dir := "above"
			if c.Delta < 0 {
				dir = "below"
			}
			fmt.Printf("   %-28s %.3f vs prototype %.3f (%s by %.3f)\n",
				c.Feature, c.Value, c.Prototype, dir, abs(c.Delta))
		}
		fmt.Println()
		if len(seen) == 4 {
			break
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
