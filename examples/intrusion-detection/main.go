// Intrusion detection: the full offline IDS evaluation workflow — train
// on one trace, evaluate on an independent trace from a different seed,
// and report the per-category detection table the DSN'13-style evaluation
// uses.
//
// Run with:
//
//	go run ./examples/intrusion-detection
package main

import (
	"fmt"
	"log"

	"ghsom"
	"ghsom/internal/kdd"
	"ghsom/internal/metrics"
	"ghsom/internal/viz"
)

func main() {
	// Train and test traces come from different seeds: the test traffic
	// is drawn from the same scenario but is not the training data.
	trainRecs, err := ghsom.GenerateTraffic(ghsom.SmallScenario(10))
	if err != nil {
		log.Fatal(err)
	}
	testRecs, err := ghsom.GenerateTraffic(ghsom.SmallScenario(20))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("train: %d records, test: %d records\n", len(trainRecs), len(testRecs))

	pipe, err := ghsom.TrainPipeline(trainRecs, ghsom.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s\n\n", pipe.Model().Stats())

	preds, err := pipe.DetectAll(testRecs)
	if err != nil {
		log.Fatal(err)
	}

	var outcome metrics.BinaryOutcome
	conf := metrics.NewConfusion("normal", "dos", "probe", "r2l", "u2r")
	perCat := map[string][2]int{} // category -> {detected, total}
	for i := range testRecs {
		truthAttack := testRecs[i].IsAttack()
		outcome.AddBinary(truthAttack, preds[i].Attack)
		truthCat := testRecs[i].Category().String()
		predCat := kdd.CategoryOf(preds[i].Label).String()
		if preds[i].Attack && predCat == "normal" {
			predCat = "unknown"
		}
		conf.Add(truthCat, predCat)
		if truthAttack {
			c := perCat[truthCat]
			c[1]++
			if preds[i].Attack {
				c[0]++
			}
			perCat[truthCat] = c
		}
	}

	fmt.Println("binary outcome on independent trace:")
	fmt.Println(" ", outcome)
	fmt.Println("\nper-category detection rate:")
	rows := make([][]string, 0, 4)
	for _, cat := range []string{"dos", "probe", "r2l", "u2r"} {
		c := perCat[cat]
		rate := "n/a"
		if c[1] > 0 {
			rate = viz.Pct(float64(c[0]) / float64(c[1]))
		}
		rows = append(rows, []string{cat, fmt.Sprint(c[1]), rate})
	}
	fmt.Print(viz.Table([]string{"category", "attacks", "detected"}, rows))
	fmt.Println("\ncategory confusion matrix:")
	fmt.Print(conf.String())
}
