// Streaming detection: run a trained pipeline as an online detector over
// a time-ordered connection stream with a sliding-window burst alarm —
// the deployment mode of the system. The stream contains a quiet prefix
// followed by attack bursts; the example prints each alarm as it fires.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"ghsom"
	"ghsom/internal/anomaly"
	"ghsom/internal/trafficgen"
)

func main() {
	// Train on a clean-ish scenario.
	trainRecs, err := ghsom.GenerateTraffic(ghsom.SmallScenario(31))
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := ghsom.TrainPipeline(trainRecs, ghsom.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %s\n", pipe.Model().Stats())

	// Build a live stream in two phases: a quiet period, then drift — the
	// mix shifts and attack types NOT present in training appear. The
	// novelty path has to carry detection through the second phase.
	quiet := trafficgen.Config{
		Seed: 32, Duration: 450, NormalSessions: 500,
		Clients: 40, Servers: 15, Noise: 0.15,
	}
	drifted := trafficgen.Config{
		Seed: 33, Duration: 450, NormalSessions: 350,
		Clients: 40, Servers: 15, Noise: 0.3,
		AttackEpisodes: map[string]int{
			"neptune": 2, "portsweep": 3, "guess_passwd": 4,
		},
	}
	streamRecs, err := trafficgen.GenerateSequence(quiet, drifted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %d records (quiet phase, then drift with attack bursts)...\n\n", len(streamRecs))

	stream, err := pipe.Stream(anomaly.StreamConfig{WindowSize: 100, AlarmRate: 0.4})
	if err != nil {
		log.Fatal(err)
	}

	for i := range streamRecs {
		x, err := pipe.Encode(&streamRecs[i])
		if err != nil {
			log.Fatal(err)
		}
		pred, newAlarm := stream.Observe(x)
		if newAlarm {
			fmt.Printf("ALARM at record %6d: window attack rate %.0f%% (predicted %s, truth %s)\n",
				i, 100*stream.WindowRate(), pred.Label, streamRecs[i].Label)
		}
	}

	fmt.Printf("\nstream summary: %d records, %.1f%% flagged, %.1f%% novel, %d alarm episodes\n",
		stream.Total(), 100*stream.AttackRate(), 100*stream.NoveltyRate(), stream.Alarms())
	fmt.Println("predicted label counts:")
	for label, n := range stream.LabelCounts() {
		fmt.Printf("  %-16s %d\n", label, n)
	}
}
