package ghsom

import (
	"bytes"
	"encoding/json"
	"testing"
)

// scalingParSweep is the worker-bound ladder the bit-identity suite runs
// against the P=1 baseline: an even split, an uneven split (3 does not
// divide the chunk counts), oversubscription (8 workers on any host),
// and the GOMAXPROCS default.
var scalingParSweep = []int{2, 3, 8, 0}

// TestDataplanesByteIdenticalAcrossParallelism is the scaling engine's
// regression suite: every parallel dataplane — TrainPipeline,
// RouteTrainedFlat (tree walk and compiled), DetectBatch, and
// DetectColumnar — must produce byte-identical serialized models and
// verdicts at every worker bound. The scheduler's determinism contract
// makes this exact, not approximate: chunk layout is a pure function of
// (n, grain), never P, and partial results fold in ascending chunk
// order, so P=1 executes the identical chunked computation tree.
func TestDataplanesByteIdenticalAcrossParallelism(t *testing.T) {
	records, err := GenerateTraffic(SmallScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	records = records[:1200]
	n := len(records)

	// P=1 baseline: trained bytes, routing placements, and verdicts.
	basePipe, err := TrainPipeline(records, benchParallelConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	serialize := func(p *Pipeline) []byte {
		t.Helper()
		prev := p.Config().Parallelism
		p.SetParallelism(0) // normalize the persisted execution knob
		defer p.SetParallelism(prev)
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	baseBytes := serialize(basePipe)

	model, compiled := basePipe.Model(), basePipe.Compiled()
	flat := make([]float64, 0, n*compiled.Dim())
	for i := range records {
		x, err := basePipe.Encode(&records[i])
		if err != nil {
			t.Fatal(err)
		}
		flat = append(flat, x...)
	}
	baseTree := make([]Placement, n)
	if err := model.RouteTrainedFlat(flat, n, baseTree, 1); err != nil {
		t.Fatal(err)
	}
	baseCompiled := make([]Placement, n)
	if err := compiled.RouteTrainedFlat(flat, n, baseCompiled, 1); err != nil {
		t.Fatal(err)
	}

	var frame bytes.Buffer
	if err := WriteColumnarBatch(&frame, records, ColumnarWriteOptions{}); err != nil {
		t.Fatal(err)
	}
	var cb ColumnarBatch
	if err := ReadColumnarBatch(bytes.NewReader(frame.Bytes()), &cb, DefaultColumnarLimits()); err != nil {
		t.Fatal(err)
	}
	verdictBytes := func(preds []Prediction) []byte {
		t.Helper()
		b, err := json.Marshal(preds)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	basePipe.SetParallelism(1)
	basePreds, err := basePipe.DetectBatch(records, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseBatchJSON := verdictBytes(basePreds)
	baseColPreds, err := basePipe.DetectColumnar(&cb, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseColJSON := verdictBytes(baseColPreds)
	if !bytes.Equal(baseBatchJSON, baseColJSON) {
		t.Fatal("P=1 baseline: DetectColumnar verdicts differ from DetectBatch")
	}

	tree := make([]Placement, n)
	comp := make([]Placement, n)
	for _, p := range scalingParSweep {
		pipe, err := TrainPipeline(records, benchParallelConfig(p))
		if err != nil {
			t.Fatalf("P=%d: train: %v", p, err)
		}
		if got := serialize(pipe); !bytes.Equal(got, baseBytes) {
			t.Errorf("P=%d: serialized model differs from P=1 baseline (lens %d vs %d)",
				p, len(got), len(baseBytes))
		}

		if err := model.RouteTrainedFlat(flat, n, tree, p); err != nil {
			t.Fatalf("P=%d: route tree: %v", p, err)
		}
		if err := compiled.RouteTrainedFlat(flat, n, comp, p); err != nil {
			t.Fatalf("P=%d: route compiled: %v", p, err)
		}
		for i := 0; i < n; i++ {
			if tree[i] != baseTree[i] {
				t.Fatalf("P=%d: tree placement %d = %+v, P=1 %+v", p, i, tree[i], baseTree[i])
			}
			if comp[i] != baseCompiled[i] {
				t.Fatalf("P=%d: compiled placement %d = %+v, P=1 %+v", p, i, comp[i], baseCompiled[i])
			}
		}

		basePipe.SetParallelism(p)
		preds, err := basePipe.DetectBatch(records, nil)
		if err != nil {
			t.Fatalf("P=%d: detect batch: %v", p, err)
		}
		if got := verdictBytes(preds); !bytes.Equal(got, baseBatchJSON) {
			t.Errorf("P=%d: DetectBatch verdicts differ from P=1 baseline", p)
		}
		colPreds, err := basePipe.DetectColumnar(&cb, nil)
		if err != nil {
			t.Fatalf("P=%d: detect columnar: %v", p, err)
		}
		if got := verdictBytes(colPreds); !bytes.Equal(got, baseColJSON) {
			t.Errorf("P=%d: DetectColumnar verdicts differ from P=1 baseline", p)
		}
	}
	basePipe.SetParallelism(1)
}

// precisionParSweep is the worker-bound ladder of the cross-precision
// suite: serial, an even split, oversubscription, and GOMAXPROCS.
var precisionParSweep = []int{1, 2, 8, 0}

// TestDataplanesByteIdenticalAcrossPrecision is the quantized BMU
// engine's regression suite: training and inference at every
// candidate-generation rung — f64 scalar baseline, f32 narrowed, int8
// shadow codebook, and auto — must produce byte-identical serialized
// models, routing placements, and verdict JSON at every worker bound.
// Reduced precision only nominates candidates; the canonical f64 settle
// (with the rung's rigorous error-bound-widened margin) picks every
// winner, so the contract is exact, not approximate.
func TestDataplanesByteIdenticalAcrossPrecision(t *testing.T) {
	records, err := GenerateTraffic(SmallScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	records = records[:1200]
	n := len(records)

	// f64 P=1 baseline.
	baseCfg := benchParallelConfig(1)
	baseCfg.Model.BMUPrecision = PrecisionF64
	basePipe, err := TrainPipeline(records, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	serialize := func(p *Pipeline) []byte {
		t.Helper()
		prev := p.Config().Parallelism
		p.SetParallelism(0) // normalize the persisted execution knob
		defer p.SetParallelism(prev)
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	baseBytes := serialize(basePipe)

	compiled := basePipe.Compiled()
	flat := make([]float64, 0, n*compiled.Dim())
	for i := range records {
		x, err := basePipe.Encode(&records[i])
		if err != nil {
			t.Fatal(err)
		}
		flat = append(flat, x...)
	}
	basePlaces := make([]Placement, n)
	if err := compiled.RouteTrainedFlat(flat, n, basePlaces, 1); err != nil {
		t.Fatal(err)
	}

	var frame bytes.Buffer
	if err := WriteColumnarBatch(&frame, records, ColumnarWriteOptions{}); err != nil {
		t.Fatal(err)
	}
	var cb ColumnarBatch
	if err := ReadColumnarBatch(bytes.NewReader(frame.Bytes()), &cb, DefaultColumnarLimits()); err != nil {
		t.Fatal(err)
	}
	verdictBytes := func(preds []Prediction) []byte {
		t.Helper()
		b, err := json.Marshal(preds)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	basePipe.SetParallelism(1)
	basePreds, err := basePipe.DetectBatch(records, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseBatchJSON := verdictBytes(basePreds)

	places := make([]Placement, n)
	for _, prec := range []Precision{PrecisionF32, PrecisionI8, PrecisionAuto} {
		for _, p := range precisionParSweep {
			cfg := benchParallelConfig(p)
			cfg.Model.BMUPrecision = prec
			pipe, err := TrainPipeline(records, cfg)
			if err != nil {
				t.Fatalf("prec=%v P=%d: train: %v", prec, p, err)
			}
			if got := serialize(pipe); !bytes.Equal(got, baseBytes) {
				t.Errorf("prec=%v P=%d: serialized model differs from f64 P=1 baseline (lens %d vs %d)",
					prec, p, len(got), len(baseBytes))
			}
			if err := pipe.Compiled().RouteTrainedFlat(flat, n, places, p); err != nil {
				t.Fatalf("prec=%v P=%d: route compiled: %v", prec, p, err)
			}
			for i := 0; i < n; i++ {
				if places[i] != basePlaces[i] {
					t.Fatalf("prec=%v P=%d: placement %d = %+v, f64 P=1 %+v",
						prec, p, i, places[i], basePlaces[i])
				}
			}
			pipe.SetParallelism(p)
			preds, err := pipe.DetectBatch(records, nil)
			if err != nil {
				t.Fatalf("prec=%v P=%d: detect batch: %v", prec, p, err)
			}
			if got := verdictBytes(preds); !bytes.Equal(got, baseBatchJSON) {
				t.Errorf("prec=%v P=%d: DetectBatch verdicts differ from f64 P=1 baseline", prec, p)
			}
			colPreds, err := pipe.DetectColumnar(&cb, nil)
			if err != nil {
				t.Fatalf("prec=%v P=%d: detect columnar: %v", prec, p, err)
			}
			if got := verdictBytes(colPreds); !bytes.Equal(got, baseBatchJSON) {
				t.Errorf("prec=%v P=%d: DetectColumnar verdicts differ from f64 P=1 baseline", prec, p)
			}
		}
		// Retargeting a loaded/trained pipeline must be equivalent to
		// training at that precision.
		basePipe.SetBMUPrecision(prec)
		preds, err := basePipe.DetectBatch(records, nil)
		if err != nil {
			t.Fatalf("prec=%v retarget: detect batch: %v", prec, err)
		}
		if got := verdictBytes(preds); !bytes.Equal(got, baseBatchJSON) {
			t.Errorf("prec=%v retarget: DetectBatch verdicts differ from f64 baseline", prec)
		}
		basePipe.SetBMUPrecision(PrecisionF64)
	}
}
