module ghsom

go 1.24
