package ghsom

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wireDetectRecords returns a detection slice exercising the columnar
// path's categorical edge cases: services the encoder never saw (which
// must fall into the "other" bucket identically on both wire formats).
func wireDetectRecords(t *testing.T) []Record {
	recs := testRecords(t)
	out := append([]Record(nil), recs[:4096]...)
	for i := range out {
		switch i % 97 {
		case 13:
			out[i].Service = "uucp_path" // real KDD service, absent from training
		case 51:
			out[i].Service = "weird_svc_42" // arbitrary unseen service
		}
	}
	return out
}

// TestDetectColumnarMatchesDetectBatch pins the wire-format equivalence
// contract: the same records, sent as NDJSON-style Record structs and as
// a columnar frame, produce byte-identical verdicts at every Parallelism
// setting — including records with services unseen at training time.
func TestDetectColumnarMatchesDetectBatch(t *testing.T) {
	recs := wireDetectRecords(t)
	pipe, err := TrainPipeline(testRecords(t), quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	if err := WriteColumnarBatch(&frame, recs, ColumnarWriteOptions{Labels: true}); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 3, 0} {
		pipe.SetParallelism(par)
		want, err := pipe.DetectBatch(recs, nil)
		if err != nil {
			t.Fatal(err)
		}
		var cb ColumnarBatch
		if err := ReadColumnarBatch(bytes.NewReader(frame.Bytes()), &cb, DefaultColumnarLimits()); err != nil {
			t.Fatal(err)
		}
		if cb.Rows() != len(recs) {
			t.Fatalf("frame rows = %d, want %d", cb.Rows(), len(recs))
		}
		got, err := pipe.DetectColumnar(&cb, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("par %d record %d: columnar %+v vs batch %+v", par, i, got[i], want[i])
			}
		}
		// The frame's labels must survive the trip for eval tooling.
		if cb.Label(13) != recs[13].Label {
			t.Fatalf("label 13 = %q, want %q", cb.Label(13), recs[13].Label)
		}
	}
}

// TestDetectColumnarRejectsUnknownProtocol checks error parity: a record
// both paths must reject is rejected by both, naming the same position.
func TestDetectColumnarRejectsUnknownProtocol(t *testing.T) {
	recs := wireDetectRecords(t)[:64]
	recs[37].Protocol = "sctp"
	pipe, err := TrainPipeline(testRecords(t), quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.DetectBatch(recs, nil); err == nil ||
		!strings.Contains(err.Error(), "record 37") {
		t.Fatalf("DetectBatch error = %v, want record 37", err)
	}
	var frame bytes.Buffer
	if err := WriteColumnarBatch(&frame, recs, ColumnarWriteOptions{}); err != nil {
		t.Fatal(err)
	}
	var cb ColumnarBatch
	if err := ReadColumnarBatch(bytes.NewReader(frame.Bytes()), &cb, DefaultColumnarLimits()); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.DetectColumnar(&cb, nil); err == nil ||
		!strings.Contains(err.Error(), "record 37") {
		t.Fatalf("DetectColumnar error = %v, want record 37", err)
	}
}

// TestLoadPipelineFileMapped pins the zero-copy load contract: a mapped
// load views the model arena straight out of the file (no copy at
// startup), classifies byte-identically to a stream load on both wire
// formats, re-serializes bit-identically, and rebuilds the pointer tree
// lazily on first Model() call.
func TestLoadPipelineFileMapped(t *testing.T) {
	recs := wireDetectRecords(t)
	pipe, err := TrainPipeline(testRecords(t), quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	var env bytes.Buffer
	if err := pipe.Save(&env); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pipeline.bin")
	if err := os.WriteFile(path, env.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	heap, err := LoadPipelineFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if heap.MappedBytes() != 0 {
		t.Fatalf("stream load reports %d mapped bytes", heap.MappedBytes())
	}
	mapped, err := LoadPipelineFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if mapped.MappedBytes() == 0 {
		t.Fatal("mapped load copied the arena (MappedBytes = 0)")
	}
	wantMapped := 16*pipe.Compiled().Stats().Units + 8*pipe.Compiled().Stats().Units*pipe.Compiled().Dim()
	if mapped.MappedBytes() != wantMapped {
		t.Fatalf("MappedBytes = %d, want %d", mapped.MappedBytes(), wantMapped)
	}

	// Re-serialization from the mapped pipeline must be bit-identical.
	// (Checked before SetParallelism below, which legitimately rewrites
	// the persisted parallelism knob.)
	var again bytes.Buffer
	if err := mapped.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), env.Bytes()) {
		t.Fatalf("mapped pipeline re-saved differently (%d vs %d bytes)", again.Len(), env.Len())
	}

	heap.SetParallelism(1)
	mapped.SetParallelism(1)
	want, err := heap.DetectBatch(recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mapped.DetectBatch(recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: mapped %+v vs heap %+v", i, got[i], want[i])
		}
	}
	var frame bytes.Buffer
	if err := WriteColumnarBatch(&frame, recs, ColumnarWriteOptions{}); err != nil {
		t.Fatal(err)
	}
	var cb ColumnarBatch
	if err := ReadColumnarBatch(bytes.NewReader(frame.Bytes()), &cb, DefaultColumnarLimits()); err != nil {
		t.Fatal(err)
	}
	colGot, err := mapped.DetectColumnar(&cb, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if colGot[i] != want[i] {
			t.Fatalf("record %d: mapped columnar %+v vs heap batch %+v", i, colGot[i], want[i])
		}
	}

	// The pointer tree is rebuilt on demand and matches the original.
	if got, want := mapped.Model().Stats(), pipe.Model().Stats(); got.Maps != want.Maps ||
		got.Units != want.Units || got.MaxDepth != want.MaxDepth {
		t.Fatalf("lazily rebuilt tree stats %+v, want %+v", got, want)
	}
}

// TestLoadPipelineFileMappedJSONFallback: a legacy JSON envelope loaded
// in mapped mode must work, own no mapping, and need no Close.
func TestLoadPipelineFileMappedJSONFallback(t *testing.T) {
	recs := testRecords(t)
	pipe, err := TrainPipeline(recs, quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pipeline.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.SaveJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipelineFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.MappedBytes() != 0 {
		t.Fatalf("JSON envelope reports %d mapped bytes", loaded.MappedBytes())
	}
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
	p1, err := pipe.Detect(&recs[0])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := loaded.Detect(&recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("JSON mapped-mode load diverged: %+v vs %+v", p1, p2)
	}
}

// TestLoadPipelineFileMappedRejectsCorrupt walks truncations of the
// envelope through the mapped loader: error or clean load, never panic.
func TestLoadPipelineFileMappedRejectsCorrupt(t *testing.T) {
	pipe, err := TrainPipeline(testRecords(t), quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	var env bytes.Buffer
	if err := pipe.Save(&env); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	raw := env.Bytes()
	for cut := 0; cut < len(raw); cut += 997 {
		path := filepath.Join(dir, "cut.bin")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if p, err := LoadPipelineFile(path, true); err == nil {
			p.Close()
			t.Fatalf("truncation at %d accepted by mapped loader", cut)
		}
	}
	if _, err := LoadPipelineFile(filepath.Join(dir, "absent.bin"), true); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestDetectColumnarSteadyStateAllocs gates the e2e ingestion alloc
// budget: decoding and classifying columnar frames in steady state must
// cost at most 0.05 heap allocations per record.
func TestDetectColumnarSteadyStateAllocs(t *testing.T) {
	recs := testRecords(t)[:2048]
	pipe, err := TrainPipeline(testRecords(t), quickPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	pipe.SetParallelism(1)
	var frame bytes.Buffer
	if err := WriteColumnarBatch(&frame, recs, ColumnarWriteOptions{}); err != nil {
		t.Fatal(err)
	}
	var cb ColumnarBatch
	out := make([]Prediction, 0, len(recs))
	r := bytes.NewReader(frame.Bytes())
	run := func() {
		r.Reset(frame.Bytes())
		if err := ReadColumnarBatch(r, &cb, DefaultColumnarLimits()); err != nil {
			t.Fatal(err)
		}
		var err error
		out, err = pipe.DetectColumnar(&cb, out)
		if err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pools and the frame buffer
	run()
	allocs := testing.AllocsPerRun(10, run)
	if perRecord := allocs / float64(len(recs)); perRecord > 0.05 {
		t.Fatalf("columnar ingest costs %.4f allocs/record (%.0f per %d-row frame), budget 0.05",
			perRecord, allocs, len(recs))
	}
}
