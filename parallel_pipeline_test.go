package ghsom

import (
	"bytes"
	"testing"
)

// benchParallelConfig (bench_test.go) sets every layer's Parallelism knob
// to p; the determinism tests reuse it so tests and benchmarks can never
// drift to different knob sets.

// TestPipelineByteIdenticalAcrossParallelism is the end-to-end determinism
// guarantee: training the full pipeline serially and with 8 workers must
// produce byte-identical serialized pipelines (encoder vocabulary, scaler
// state, GHSOM weights, and detector thresholds all included), and
// DetectAll must return identical predictions. The envelope also persists
// the Parallelism execution knob (v2), which legitimately differs between
// the two runs, so it is normalized to a common value before comparing —
// the guarantee covers trained state, not the worker-count setting.
func TestPipelineByteIdenticalAcrossParallelism(t *testing.T) {
	records, err := GenerateTraffic(SmallScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	records = records[:1500]

	build := func(p int) (*Pipeline, []byte) {
		pipe, err := TrainPipeline(records, benchParallelConfig(p))
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		pipe.SetParallelism(0)
		var buf bytes.Buffer
		if err := pipe.Save(&buf); err != nil {
			t.Fatalf("parallelism %d: save: %v", p, err)
		}
		return pipe, buf.Bytes()
	}
	serialPipe, serialBytes := build(1)
	parallelPipe, parallelBytes := build(8)
	if !bytes.Equal(serialBytes, parallelBytes) {
		t.Fatalf("serialized pipelines differ between Parallelism=1 and 8 (lens %d vs %d)",
			len(serialBytes), len(parallelBytes))
	}

	want, err := serialPipe.DetectAll(records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallelPipe.DetectAll(records)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction %d differs: %+v vs %+v", i, want[i], got[i])
		}
	}
}

// TestDetectAllFirstErrorDeterministic pins DetectAll's error contract
// under parallelism: the lowest-index bad record wins.
func TestDetectAllFirstErrorDeterministic(t *testing.T) {
	records, err := GenerateTraffic(SmallScenario(2))
	if err != nil {
		t.Fatal(err)
	}
	records = records[:800]
	pipe, err := TrainPipeline(records, benchParallelConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]Record(nil), records[:200]...)
	bad[50].Protocol = "not-a-protocol"
	bad[150].Protocol = "also-bad"
	for trial := 0; trial < 3; trial++ {
		if _, err := pipe.DetectAll(bad); err == nil {
			t.Fatal("expected error from corrupted record")
		} else if got := err.Error(); got[:len("record 50:")] != "record 50:" {
			t.Fatalf("error does not name lowest-index record: %q", got)
		}
	}
}
